"""The CPE (customer-premises equipment) device model.

A :class:`CpeDevice` is a home router: it NATs IPv4 traffic between the
home LAN and the ISP, routes IPv6 natively, optionally runs an embedded
DNS forwarder (:mod:`repro.cpe.forwarder`), and — in the configurations
this paper is about — carries a PREROUTING DNAT rule that hijacks port-53
traffic to that forwarder.

Behavioural matrix (the cases the methodology must distinguish):

===========================  =========================  ======================
Configuration                Query to public resolver   Query to CPE WAN IP
===========================  =========================  ======================
honest, port 53 closed       forwarded untouched        dropped (timeout)
honest, port 53 open         forwarded untouched        forwarder answers
DNAT interceptor             hijacked to forwarder,     forwarder answers
                             answer spoofed
===========================  =========================  ======================

Step 2 of the methodology tells rows two and three apart by *comparing*
the ``version.bind`` strings from both columns (Appendix A).
"""

from __future__ import annotations

from typing import Optional

from repro.dnswire import DNS_PORT, RCode, decode_or_none
from repro.net import (
    Action,
    Chain,
    NatTable,
    Packet,
    Protocol,
    make_reply,
    udp53_dnat_rule,
)
from repro.net.addr import IPAddress, IPNetwork, parse_ip
from repro.net.doh import DOH_PORT
from repro.net.dot import DOT_PORT
from repro.net.router import Router
from repro.interceptors.encrypted import (
    EncryptedDnsPolicy,
    parse_encrypted_query,
    wrap_encrypted_response,
)
from repro.resolvers.software import ServerSoftware

from .encrypted import CPE_TLS_IDENTITY, DOWNGRADE_PORT, EncryptedDnsEngine
from .forwarder import UPSTREAM_PORT, ForwarderEngine


class CpeDevice(Router):
    """A residential gateway.

    Parameters
    ----------
    name:
        Node name.
    lan_v4_prefix:
        The home IPv4 subnet (e.g. ``192.168.1.0/24``); the CPE owns
        its ``.1``.
    wan_v4 / wan_v6:
        Public addresses assigned by the ISP.
    lan_v6_prefix:
        The delegated IPv6 prefix routed to the home (no NAT).
    wan_gateway:
        Node name of the ISP access router.
    lan_host:
        Node name of the (single) measured host inside the home.
    forwarder:
        The embedded DNS forwarder, or None for a pure router.
    wan_port53_open:
        Whether the forwarder is reachable on the WAN address even
        without interception (the confounder Appendix A discusses).
    model:
        Marketing name, e.g. ``"XB6"`` — surfaces in traces and reports.
    """

    def __init__(
        self,
        name: str,
        lan_v4_prefix: "str | IPNetwork",
        wan_v4: "str | IPAddress",
        wan_gateway: str,
        lan_host: str,
        wan_v6: "str | IPAddress | None" = None,
        lan_v6_prefix: "str | IPNetwork | None" = None,
        forwarder: Optional[ForwarderEngine] = None,
        wan_port53_open: bool = False,
        model: str = "generic",
        asn: Optional[int] = None,
        encrypted_dns: Optional[EncryptedDnsPolicy] = None,
    ) -> None:
        import ipaddress as _ip

        lan_v4_prefix = (
            _ip.ip_network(lan_v4_prefix)
            if isinstance(lan_v4_prefix, str)
            else lan_v4_prefix
        )
        lan_gateway_v4 = lan_v4_prefix.network_address + 1
        super().__init__(
            name,
            addresses=[lan_gateway_v4, wan_v4] + ([wan_v6] if wan_v6 else []),
            asn=asn,
        )
        self.model = model
        self.lan_v4_prefix = lan_v4_prefix
        self.lan_gateway_v4 = lan_gateway_v4
        self.wan_v4 = parse_ip(wan_v4)
        self.wan_v6 = parse_ip(wan_v6) if wan_v6 else None
        self.lan_v6_prefix = (
            _ip.ip_network(lan_v6_prefix)
            if isinstance(lan_v6_prefix, str)
            else lan_v6_prefix
        )
        self.wan_gateway = wan_gateway
        self.lan_host = lan_host
        self.nat = NatTable(wan_v4=self.wan_v4)
        self.prerouting = Chain("PREROUTING")
        self.forwarder = forwarder
        self.wan_port53_open = wan_port53_open
        self.encrypted = EncryptedDnsEngine(encrypted_dns)

        # LAN-side routes: home prefixes to the host, default upstream.
        self.routes.add(str(lan_v4_prefix), lan_host)
        if self.lan_v6_prefix is not None:
            self.routes.add(str(self.lan_v6_prefix), lan_host)
        self.routes.add_default(wan_gateway, family=4)
        self.routes.add_default(wan_gateway, family=6)

    # -- configuration -----------------------------------------------------

    def enable_interception(self, family: int = 4) -> None:
        """Install the XDNS-style DNAT hijack rule for one family.

        The rule rewrites every LAN-originated UDP/53 packet's destination
        to the CPE's own address, putting the embedded forwarder in the
        resolution path — destination NAT exactly as RDK-B's firewall
        does it.
        """
        if self.forwarder is None:
            raise ValueError("cannot intercept without an embedded forwarder")
        target = self.lan_gateway_v4 if family == 4 else self.wan_v6
        if target is None:
            raise ValueError(f"no IPv{family} address to DNAT to")
        self.prerouting.append(
            udp53_dnat_rule(target, comment=f"{self.model} DNS redirection v{family}")
        )

    def intercepts_family(self, family: int) -> bool:
        for rule in self.prerouting.rules:
            if rule.action is Action.DNAT and rule.dnat_to is not None:
                if rule.dnat_to.version == family:
                    return True
        return False

    def wan_address(self, family: int) -> Optional[IPAddress]:
        return self.wan_v4 if family == 4 else self.wan_v6

    # -- direction helpers ----------------------------------------------------

    def is_from_lan(self, packet: Packet) -> bool:
        if packet.family == 4:
            return packet.src in self.lan_v4_prefix
        return self.lan_v6_prefix is not None and packet.src in self.lan_v6_prefix

    # -- transit path -----------------------------------------------------------

    def forward(self, packet: Packet) -> None:
        """PREROUTING runs *before* the TTL-forwarding decrement.

        This matches Linux: a DNAT rule rewrites the destination before
        the routing decision, so a packet DNAT'd to the gateway itself is
        locally delivered and never has its TTL checked — which is why a
        TTL=1 probe elicits a DNS answer (not an ICMP) from an
        intercepting CPE. The TTL-probing extension (§6) keys on exactly
        this behaviour.
        """
        if packet.protocol is Protocol.UDP and self.is_from_lan(packet):
            assert packet.udp is not None
            if packet.udp.dport in (
                DOT_PORT,
                DOH_PORT,
            ) and self.encrypted.handle_client_session(self, packet):
                return
            verdict = self.prerouting.evaluate(packet)
            if verdict.action is Action.DROP:
                self.trace("drop", packet, "firewall DROP")
                return
            if verdict.action is Action.DNAT:
                hijacked = verdict.packet
                self.trace(
                    "intercept",
                    hijacked,
                    f"DNAT {packet.dst} -> {hijacked.dst} "
                    f"[{verdict.rule.comment if verdict.rule else ''}]",
                )
                if self.forwarder is not None:
                    # Role switch (§3.2): stop forwarding by IP rules,
                    # become a DNS forwarder. Reply claims the original dst.
                    self.forwarder.handle_client_query(
                        self, hijacked, reply_src=packet.dst
                    )
                else:
                    self.trace("drop", hijacked, "DNAT with no forwarder")
                return
        super().forward(packet)

    def inspect_transit(self, packet: Packet) -> bool:
        """LAN->WAN IPv4 packets are source-NATed; everything else routes."""
        if packet.protocol is not Protocol.UDP:
            return False
        if not self.is_from_lan(packet):
            return False
        if packet.family == 4:
            translated = self.nat.translate_outbound(packet)
            if translated is None:
                self.trace("drop", packet, "no WAN address")
                return True
            self.trace("rewrite", translated, f"SNAT {packet.src} -> {translated.src}")
            self.forward_by_route(translated)
            return True
        return False  # IPv6: plain routing via forward_by_route

    # -- local delivery -----------------------------------------------------------

    def deliver_local(self, packet: Packet) -> None:
        if packet.protocol is not Protocol.UDP:
            self._deliver_icmp(packet)
            return
        assert packet.udp is not None

        # 1. Inbound NAT: packets to the WAN address matching a binding
        #    belong to a LAN flow.
        if packet.family == 4 and packet.dst == self.wan_v4:
            translated = self.nat.translate_inbound(packet)
            if translated is not None:
                self.trace(
                    "rewrite", translated, f"un-SNAT -> {translated.dst}"
                )
                self.forward_by_route(translated)
                return

        # 2. The forwarder's own upstream responses.
        if (
            self.forwarder is not None
            and packet.udp.dport == UPSTREAM_PORT
            and packet.dst in (self.wan_v4, self.wan_v6)
        ):
            self.forwarder.handle_upstream_response(self, packet)
            return

        # 2b. Answers to the encrypted engine's downgraded relays.
        if packet.udp.dport == DOWNGRADE_PORT and packet.dst in (
            self.wan_v4,
            self.wan_v6,
        ):
            self.encrypted.handle_upstream_response(self, packet)
            return

        # 2c. The CPE's own TLS endpoint. A forwarder reachable from the
        #     WAN terminates encrypted probes too — it cannot speak for
        #     anyone else, so it refuses the query, but the session
        #     presents the router's self-signed identity, which is what
        #     certificate cross-validation is there to observe.
        if (
            packet.udp.dport in (DOT_PORT, DOH_PORT)
            and self.forwarder is not None
            and packet.dst in (self.wan_v4, self.wan_v6)
            and (self.wan_port53_open or self.intercepts_family(packet.family))
        ):
            self._answer_tls_probe(packet)
            return

        # 3. DNS service on the CPE itself.
        if packet.udp.dport == DNS_PORT and self.forwarder is not None:
            on_wan = packet.dst in (self.wan_v4, self.wan_v6)
            on_lan = packet.dst == self.lan_gateway_v4
            serves_wan = self.wan_port53_open or self.intercepts_family(packet.family)
            if on_lan or (on_wan and serves_wan):
                self.forwarder.handle_client_query(self, packet, reply_src=packet.dst)
                return
            self.trace("drop", packet, "port 53 closed on WAN")
            return

        self.trace("drop", packet, f"closed port {packet.udp.dport}")

    def _answer_tls_probe(self, packet: Packet) -> None:
        """Refuse an encrypted query under the CPE's own certificate."""
        assert packet.udp is not None
        query = parse_encrypted_query(packet.udp.payload, packet.udp.dport)
        if query is None:
            self.trace("drop", packet, "malformed encrypted probe")
            return
        inner = decode_or_none(query.dns_payload)
        if inner is None or inner.question is None:
            self.trace("drop", packet, "unparseable encrypted probe")
            return
        wire = wrap_encrypted_response(
            query, inner.reply(rcode=RCode.REFUSED).encode(), CPE_TLS_IDENTITY
        )
        reply = make_reply(packet, wire)
        self.trace("deliver", reply, "cpe tls endpoint (REFUSED)")
        self.send_toward(reply)

    def _deliver_icmp(self, packet: Packet) -> None:
        """ICMP errors for NATed flows are translated back to the LAN host.

        Real NATs rewrite ICMP errors using the quoted inner packet; this
        is what lets a LAN host run traceroute — and what makes the TTL
        probing extension (§6) work from behind NAT.
        """
        assert packet.icmp is not None
        quoted = packet.icmp.quoted
        if (
            quoted is not None
            and quoted.protocol is Protocol.UDP
            and quoted.udp is not None
            and packet.family == 4
            and quoted.src == self.wan_v4
        ):
            binding = self.nat.binding_for_public_port(4, quoted.udp.sport)
            if binding is not None:
                inner = quoted.with_src(binding.flow.src, sport=binding.flow.sport)
                from repro.net.packet import IcmpData, Packet as _Packet

                rewritten = _Packet(
                    src=packet.src,
                    dst=binding.flow.src,
                    protocol=Protocol.ICMP,
                    icmp=IcmpData(packet.icmp.icmp_type, quoted=inner),
                    ttl=packet.ttl,
                )
                self.trace("rewrite", rewritten, "icmp un-SNAT")
                self.forward_by_route(rewritten)
                return
        self.trace("deliver", packet, "icmp for cpe")

    # -- emission helpers used by the forwarder ------------------------------------

    def emit_lan(self, packet: Packet) -> None:
        self.send_toward(packet)

    def emit_wan(self, packet: Packet) -> None:
        self.send_toward(packet)

    def render_firewall(self) -> str:
        """The PREROUTING chain in iptables-ish text (for the case study)."""
        return self.prerouting.render()
