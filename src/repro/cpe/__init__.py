"""``repro.cpe`` — customer-premises equipment models.

Home routers with NAT, embedded DNS forwarders, iptables-style DNAT
interception, declarative firmware profiles for fleet generation, and a
faithful model of the XB6/RDK-B/XDNS mechanism from the paper's §5 case
study.
"""

from .device import CpeDevice
from .forwarder import UPSTREAM_PORT, ForwarderEngine, PendingQuery
from .firmware import (
    FirmwareProfile,
    TABLE5_SOFTWARE_MIX,
    dnat_interceptor,
    honest_forwarder,
    honest_router,
    open_wan_forwarder,
    pihole_profile,
    table5_total,
    xb6_profile,
)
from .xb6 import RDKB_FIREWALL_EXCERPT, build_xb6, describe_mechanism

__all__ = [
    "CpeDevice",
    "UPSTREAM_PORT",
    "ForwarderEngine",
    "PendingQuery",
    "FirmwareProfile",
    "TABLE5_SOFTWARE_MIX",
    "dnat_interceptor",
    "honest_forwarder",
    "honest_router",
    "open_wan_forwarder",
    "pihole_profile",
    "table5_total",
    "xb6_profile",
    "RDKB_FIREWALL_EXCERPT",
    "build_xb6",
    "describe_mechanism",
]
