"""The embedded DNS forwarder that runs inside a CPE.

This is the component the paper's Step 2 fingerprints. It terminates
client queries (answering CHAOS debugging queries per its software
personality), forwards everything else to its pre-configured upstream —
typically the ISP resolver — and relays responses back. When a query was
*hijacked* (DNAT'd) rather than addressed to the CPE, the relay spoofs
the response source to the original destination, which is what makes the
interception transparent (§2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.dnswire import DNS_PORT, Message, RCode, decode_or_none
from repro.dnswire.edns import Edns, with_edns
from repro.net import Packet, make_udp
from repro.net.addr import IPAddress, parse_ip
from repro.resolvers.ambiguity import (
    DEFAULT_AMBIGUITY,
    AmbiguityAction,
    ambiguity_finalize,
    ambiguity_forward_transform,
    ambiguity_precheck,
)
from repro.resolvers.base import ChaosOutcome, chaos_respond
from repro.resolvers.software import ServerSoftware

if TYPE_CHECKING:  # pragma: no cover
    from .device import CpeDevice

#: WAN source port the forwarder uses for its own upstream queries.
UPSTREAM_PORT = 3053


@dataclass
class PendingQuery:
    """Book-keeping for one query relayed upstream."""

    client_addr: IPAddress
    client_port: int
    original_id: int
    reply_src: IPAddress  # spoofed to the original destination when hijacked
    qname_text: str
    #: EDNS state to re-attach to the relayed response, for software that
    #: strips unknown options on the way up but echoes them on the way
    #: back (``edns_unknown="echo"`` forwarder personalities).
    edns_echo: Optional[Edns] = None


class ForwarderEngine:
    """Per-CPE DNS forwarder state machine."""

    def __init__(
        self,
        software: ServerSoftware,
        upstream_v4: "str | IPAddress | None" = None,
        upstream_v6: "str | IPAddress | None" = None,
    ) -> None:
        self.software = software
        self.upstream_v4 = parse_ip(upstream_v4) if upstream_v4 else None
        self.upstream_v6 = parse_ip(upstream_v6) if upstream_v6 else None
        self._pending: dict[int, PendingQuery] = {}
        self._next_upstream_id = 0x1000
        self.client_queries = 0
        self.upstream_queries = 0

    def upstream_for_family(self, family: int) -> Optional[IPAddress]:
        return self.upstream_v4 if family == 4 else self.upstream_v6

    def reset(self) -> None:
        """Return the engine to its just-constructed state (scenario
        reuse): no pending relays, id allocator and counters rewound."""
        self._pending.clear()
        self._next_upstream_id = 0x1000
        self.client_queries = 0
        self.upstream_queries = 0

    # -- client side --------------------------------------------------------

    def handle_client_query(
        self, cpe: "CpeDevice", packet: Packet, reply_src: IPAddress
    ) -> None:
        """Process a query that reached the forwarder.

        ``reply_src`` is the address the response must claim to come from:
        the CPE's own address for queries *addressed to* the CPE, or the
        original (hijacked) destination for DNAT'd queries.
        """
        assert packet.udp is not None
        self.client_queries += 1
        query = decode_or_none(packet.udp.payload)
        if query is None or query.is_response or query.question is None:
            cpe.trace("drop", packet, "forwarder: not a query")
            return

        profile = self.software.ambiguity
        edns_echo: Optional[Edns] = None
        if profile is not DEFAULT_AMBIGUITY:
            # This code base has opinions about ambiguous queries: react
            # locally (error or silent drop) before anything is relayed,
            # so the divergence is attributable to *this* forwarder and
            # never composed with the upstream's.
            early = ambiguity_precheck(profile, query)
            if early is AmbiguityAction.DROP:
                cpe.trace("drop", packet, "forwarder: ambiguous query dropped")
                return
            if early is not None:
                self._reply(
                    cpe, packet, ambiguity_finalize(profile, query, early), reply_src
                )
                return
            query, edns_echo = ambiguity_forward_transform(profile, query)

        outcome = chaos_respond(self.software, query)
        if isinstance(outcome, Message):
            self._reply(
                cpe, packet, ambiguity_finalize(profile, query, outcome), reply_src
            )
            return
        if outcome is ChaosOutcome.IGNORE:
            cpe.trace("drop", packet, "forwarder: chaos ignored")
            return
        # NOT_CHAOS or FORWARD: relay upstream.
        self._forward_upstream(cpe, packet, query, reply_src, edns_echo=edns_echo)

    def _forward_upstream(
        self,
        cpe: "CpeDevice",
        packet: Packet,
        query: Message,
        reply_src: IPAddress,
        edns_echo: Optional[Edns] = None,
    ) -> None:
        upstream = self.upstream_for_family(packet.family)
        if upstream is None:
            self._reply(cpe, packet, query.reply(rcode=RCode.SERVFAIL), reply_src)
            return
        source = cpe.wan_address(packet.family)
        if source is None:
            self._reply(cpe, packet, query.reply(rcode=RCode.SERVFAIL), reply_src)
            return
        assert packet.udp is not None
        if self.software.ambiguity.overlap == "first":
            # Dedup on the client's (address, port, id) triple: a second
            # in-flight transmission reusing the id is treated as a
            # duplicate and dropped, even if its payload differs.
            for entry in self._pending.values():
                if (
                    entry.client_addr == packet.src
                    and entry.client_port == packet.udp.sport
                    and entry.original_id == query.msg_id
                ):
                    cpe.trace("drop", packet, "forwarder: duplicate in-flight id")
                    return
        upstream_id = self._allocate_id()
        self._pending[upstream_id] = PendingQuery(
            client_addr=packet.src,
            client_port=packet.udp.sport,
            original_id=query.msg_id,
            reply_src=reply_src,
            qname_text=query.question.qname.to_text() if query.question else ".",
            edns_echo=edns_echo,
        )
        self.upstream_queries += 1
        relay = make_udp(
            source, UPSTREAM_PORT, upstream, DNS_PORT, query.with_id(upstream_id).encode()
        )
        cpe.trace("forward", relay, f"forwarder -> upstream {upstream}")
        cpe.emit_wan(relay)

    # -- upstream side ----------------------------------------------------

    def handle_upstream_response(self, cpe: "CpeDevice", packet: Packet) -> None:
        assert packet.udp is not None
        response = decode_or_none(packet.udp.payload)
        if response is None or not response.is_response:
            cpe.trace("drop", packet, "forwarder: bad upstream response")
            return
        pending = self._pending.get(response.msg_id)
        if pending is None:
            cpe.trace("drop", packet, "forwarder: unexpected upstream id")
            return
        # A matching id alone is not proof the response is ours: off-path
        # junk (or a blind spoofer racing the real answer) can collide on
        # the 16-bit id. Relay only what the configured upstream sent from
        # port 53 for the question we actually asked; mismatches are
        # dropped *without* consuming the pending entry, so the genuine
        # answer still finds it.
        if (
            packet.src != self.upstream_for_family(packet.family)
            or packet.udp.sport != DNS_PORT
        ):
            cpe.trace("drop", packet, "forwarder: response from non-upstream source")
            return
        qname = response.question.qname.to_text() if response.question else "."
        if qname != pending.qname_text:
            cpe.trace("drop", packet, "forwarder: response question mismatch")
            return
        del self._pending[response.msg_id]
        relayed = response.with_id(pending.original_id)
        if pending.edns_echo is not None:
            relayed = with_edns(
                relayed,
                payload_size=pending.edns_echo.payload_size,
                options=pending.edns_echo.options,
            )
        reply = make_udp(
            pending.reply_src,
            DNS_PORT,
            pending.client_addr,
            pending.client_port,
            relayed.encode(),
        )
        spoofed = pending.reply_src not in cpe.addresses()
        cpe.trace(
            "send",
            reply,
            "forwarder reply" + (" (spoofed source)" if spoofed else ""),
        )
        cpe.emit_lan(reply)

    # -- helpers --------------------------------------------------------------

    def _reply(
        self, cpe: "CpeDevice", packet: Packet, response: Message, reply_src: IPAddress
    ) -> None:
        assert packet.udp is not None
        reply = make_udp(
            reply_src, DNS_PORT, packet.src, packet.udp.sport, response.encode()
        )
        spoofed = reply_src not in cpe.addresses()
        cpe.trace(
            "send",
            reply,
            "forwarder local answer" + (" (spoofed source)" if spoofed else ""),
        )
        cpe.emit_lan(reply)

    def _allocate_id(self) -> int:
        self._next_upstream_id = (self._next_upstream_id + 1) & 0xFFFF
        while self._next_upstream_id in self._pending:
            self._next_upstream_id = (self._next_upstream_id + 1) & 0xFFFF
        return self._next_upstream_id

    @property
    def pending_count(self) -> int:
        return len(self._pending)
