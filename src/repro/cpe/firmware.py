"""Firmware profiles: declarative descriptions of CPE behaviour.

A :class:`FirmwareProfile` captures everything the population generator
needs to instantiate a CPE: its embedded forwarder software (if any),
whether it intercepts each family, and whether its WAN port 53 is open.
Profiles are the unit the RIPE-Atlas-style fleet is sampled over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.interceptors.encrypted import (
    EncryptedAction,
    EncryptedDnsPolicy,
    PASS_THROUGH,
    downgrade_all,
)
from repro.resolvers.software import (
    ChaosBehavior,
    ServerSoftware,
    bind_debian,
    bind_redhat,
    bind_vanilla,
    dnsmasq,
    microsoft,
    pi_hole,
    powerdns,
    q9,
    quirky,
    silent_forwarder,
    unbound,
    windows_ns,
    xdns,
)


@dataclass(frozen=True)
class FirmwareProfile:
    """Static behaviour of one CPE model/firmware combination."""

    model: str
    software: Optional[ServerSoftware] = None
    intercepts_v4: bool = False
    intercepts_v6: bool = False
    wan_port53_open: bool = False
    notes: str = ""
    #: How this firmware treats encrypted DNS leaving the LAN (block /
    #: downgrade-to-53 / pass-through, per protocol and optionally per
    #: SNI). Part of the profile's identity: it feeds the scenario
    #: signature through the frozen dataclass hash like every other
    #: field, so two probes differing only here never share a scenario.
    encrypted_dns: EncryptedDnsPolicy = PASS_THROUGH

    @property
    def is_interceptor(self) -> bool:
        return self.intercepts_v4 or self.intercepts_v6


def honest_router(model: str = "plain-router") -> FirmwareProfile:
    """A gateway with no DNS service at all — the common good citizen."""
    return FirmwareProfile(model=model, software=None)


def honest_forwarder(
    software: Optional[ServerSoftware] = None,
    model: str = "lan-forwarder",
    wan_open: bool = False,
) -> FirmwareProfile:
    """A gateway offering DNS to the LAN (DHCP points clients at it)
    but *not* hijacking traffic addressed elsewhere."""
    return FirmwareProfile(
        model=model,
        software=software or dnsmasq("2.80"),
        wan_port53_open=wan_open,
        notes="forwarder, no interception",
    )


def open_wan_forwarder(
    software: Optional[ServerSoftware] = None, model: str = "open-forwarder"
) -> FirmwareProfile:
    """The Appendix-A confounder: port 53 answers on the WAN address,
    yet nothing is intercepted."""
    return honest_forwarder(software=software, model=model, wan_open=True)


def dnat_interceptor(
    software: Optional[ServerSoftware] = None,
    model: str = "dnat-interceptor",
    v4: bool = True,
    v6: bool = False,
) -> FirmwareProfile:
    """A gateway whose PREROUTING chain hijacks port 53 to its forwarder.

    Its encrypted-DNS posture matches its plaintext aggression within
    its means: port 853 (DoT and DoQ) is firewalled outright, but DoH
    shares port 443 with every other HTTPS flow, so it slips through —
    the asymmetry that makes DoH the strongest evasion transport.
    """
    return FirmwareProfile(
        model=model,
        software=software or dnsmasq("2.80"),
        intercepts_v4=v4,
        intercepts_v6=v6,
        notes="DNAT interception",
        encrypted_dns=EncryptedDnsPolicy(
            dot=EncryptedAction.BLOCK,
            doq=EncryptedAction.BLOCK,
        ),
    )


def xb6_profile(buggy: bool = True) -> FirmwareProfile:
    """The Arris/Technicolor XB6 running RDK-B with XDNS (§5).

    The XDNS filtering service is opt-in; ``buggy=True`` models the units
    the paper found redirecting *all* queries to the ISP resolver without
    user consent.

    The buggy units also terminate encrypted transports and *downgrade*
    them: the session ends on the gateway's own certificate and the
    query is forced through the ISP resolver over plaintext — the XDNS
    redirection applied one layer up. Only opportunistic-profile clients
    accept the swap; strict profiles see the foreign identity.
    """
    return FirmwareProfile(
        model="XB6",
        software=xdns(),
        intercepts_v4=buggy,
        intercepts_v6=False,
        notes="RDK-B XDNS DNAT redirection bug" if buggy else "RDK-B XDNS (opt-in off)",
        encrypted_dns=downgrade_all() if buggy else PASS_THROUGH,
    )


#: Canonical public-resolver TLS names a DNS-filtering deployment
#: blocklists to stop clients bypassing it over encrypted transports
#: (the Mozilla-canary / known-DoH-endpoint blocklist pattern). Spelled
#: out here rather than imported from :mod:`repro.resolvers.public` —
#: a blocklist is curated by name, and drifting with the provider
#: catalog would hide exactly the gaps such lists have in reality.
PUBLIC_RESOLVER_SNIS: frozenset[str] = frozenset(
    {"one.one.one.one", "dns.google", "dns.quad9.net", "dns.opendns.com"}
)


def pihole_profile(version: str = "2.81") -> FirmwareProfile:
    """A home network whose owner deliberately intercepts DNS with a
    Pi-hole (the paper saw eight of these among the 49 CPE interceptors).

    Owners who filter on purpose also stop the escape hatches — but by
    *blocklist*, not by port: sessions dialing the canonical public
    resolvers are blocked on every encrypted transport, while anything
    off-list (a private DoH endpoint, say) passes untouched.
    """
    return FirmwareProfile(
        model="pi-hole",
        software=pi_hole(version),
        intercepts_v4=True,
        notes="owner-installed ad blocking",
        encrypted_dns=EncryptedDnsPolicy(
            dot=EncryptedAction.BLOCK,
            doh=EncryptedAction.BLOCK,
            doq=EncryptedAction.BLOCK,
            sni_targets=PUBLIC_RESOLVER_SNIS,
        ),
    )


#: Interceptor software mix matching Table 5 of the paper: 23 dnsmasq,
#: 8 pi-hole, 6 unbound, 2 BIND-RedHat, and 1 each of ten oddities = 49.
TABLE5_SOFTWARE_MIX: tuple[tuple[ServerSoftware, int], ...] = (
    (dnsmasq("2.78"), 8),
    (dnsmasq("2.80"), 8),
    (dnsmasq("2.85"), 7),
    (pi_hole("2.81"), 5),
    (pi_hole("2.84"), 3),
    (unbound("1.9.0"), 4),
    (unbound("1.13.1"), 2),
    (bind_redhat(), 2),
    (powerdns(), 1),
    (q9(), 1),
    (bind_vanilla("9.16.15"), 1),
    (bind_debian(), 1),
    (windows_ns(), 1),
    (microsoft(), 1),
    (quirky("new"), 1),
    (quirky("unknown"), 1),
    (quirky("none"), 1),
    (quirky("huuh?"), 1),
)


def table5_total() -> int:
    return sum(count for _software, count in TABLE5_SOFTWARE_MIX)
