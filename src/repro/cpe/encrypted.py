"""Encrypted-DNS handling inside a CPE (the XDRI attack surface).

Residential gateways increasingly carry opinions about encrypted DNS:
RDK-B class firmware can block port 853 outright, and an XDNS-style
forwarder can terminate sessions and force resolution back through the
ISP resolver — the "downgrade" behaviour that silently re-inserts the
gateway into the resolution path an encrypted stub tried to escape.

The :class:`EncryptedDnsEngine` is the CPE-side counterpart of the
middlebox's per-protocol policy: it classifies LAN-originated sessions
on ports 853/443, applies the firmware's
:class:`~repro.interceptors.encrypted.EncryptedDnsPolicy`, and for
downgrades relays the inner query over plaintext UDP/53 to the
forwarder's upstream (the ISP resolver), re-framing the answer with the
*gateway's* certificate identity. Unlike the middlebox — which relays
to the original destination and therefore returns genuine answer
content — a CPE downgrade swaps the resolver too, exactly what XDNS
does for plaintext.

Session state lives here: the per-connection set of consumed DoQ stream
ids (RFC 9250 forbids stream reuse; a terminating proxy must track it)
and the pending map for in-flight relays. Both are keyed by the LAN
client's (address, port) — which is why ``reset()`` must run on
scenario reuse: the LAN address is fixed and ephemeral ports rewind, so
stale entries from a previous probe would collide with a fresh one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.dnswire import DNS_PORT
from repro.net import Packet, make_udp
from repro.net.addr import IPAddress
from repro.interceptors.encrypted import (
    EncryptedAction,
    EncryptedDnsPolicy,
    EncryptedQuery,
    PASS_THROUGH,
    parse_encrypted_query,
    wrap_encrypted_response,
)

if TYPE_CHECKING:  # pragma: no cover
    from .device import CpeDevice

#: WAN source port for the engine's downgraded plaintext relays
#: (distinct from the forwarder's UPSTREAM_PORT so replies demux).
DOWNGRADE_PORT = 3443

#: Identity on the gateway's own (self-signed) certificate. A CPE that
#: terminates DoT/DoH/DoQ cannot present the dialed resolver's identity
#: any more than a middlebox can.
CPE_TLS_IDENTITY = "router.local"


@dataclass
class PendingDowngrade:
    """Book-keeping for one downgraded session awaiting its answer."""

    client_addr: IPAddress
    client_port: int
    original_dst: IPAddress  # the reply must claim this source
    dport: int  # the encrypted port the client dialed (853/443)
    query: EncryptedQuery


class EncryptedDnsEngine:
    """Per-CPE encrypted-DNS policy enforcement and session state."""

    def __init__(self, policy: Optional[EncryptedDnsPolicy] = None) -> None:
        self.policy = policy or PASS_THROUGH
        self._pending: dict[int, PendingDowngrade] = {}
        # Per-connection DoQ stream ids already consumed.
        self._streams: dict[tuple[IPAddress, int], set[int]] = {}
        self._next_relay_id = 0x4000
        self.blocked_sessions = 0
        self.downgraded_sessions = 0

    def reset(self) -> None:
        """Return the engine to its just-constructed state (scenario
        reuse): no pending relays, no remembered streams, counters and
        the id allocator rewound."""
        self._pending.clear()
        self._streams.clear()
        self._next_relay_id = 0x4000
        self.blocked_sessions = 0
        self.downgraded_sessions = 0

    # -- LAN side -----------------------------------------------------------

    def handle_client_session(self, cpe: "CpeDevice", packet: Packet) -> bool:
        """Apply the policy to one LAN-originated session packet.

        Returns True when the packet was consumed (blocked or
        downgraded); False means pass-through — the caller routes it
        upstream untouched.
        """
        assert packet.udp is not None
        query = parse_encrypted_query(packet.udp.payload, packet.udp.dport)
        if query is None:
            return False
        action = self.policy.action_for(query.protocol, query.sni)
        if action is EncryptedAction.PASS:
            return False
        if action is EncryptedAction.BLOCK:
            self.blocked_sessions += 1
            cpe.trace("drop", packet, f"encrypted BLOCK ({query.protocol})")
            return True
        # DOWNGRADE: terminate with the gateway's certificate and force
        # the query through the forwarder's upstream over plaintext.
        connection = (packet.src, packet.udp.sport)
        if query.protocol == "doq":
            seen = self._streams.setdefault(connection, set())
            if query.stream_id in seen:
                cpe.trace(
                    "drop", packet, f"DoQ stream {query.stream_id} reused: reset"
                )
                return True
            seen.add(query.stream_id)
        upstream = (
            cpe.forwarder.upstream_for_family(packet.family)
            if cpe.forwarder is not None
            else None
        )
        source = cpe.wan_address(packet.family)
        if upstream is None or source is None:
            # Downgrade configured but nowhere to relay to: the session
            # dies, indistinguishable from BLOCK on the wire.
            self.blocked_sessions += 1
            cpe.trace("drop", packet, "downgrade with no upstream")
            return True
        self.downgraded_sessions += 1
        relay_id = self._allocate_id()
        self._pending[relay_id] = PendingDowngrade(
            client_addr=packet.src,
            client_port=packet.udp.sport,
            original_dst=packet.dst,
            dport=packet.udp.dport,
            query=query,
        )
        # Splice the relay id into the raw wire (first two bytes) rather
        # than decoding: the engine terminates sessions, it is not a DNS
        # server, and malformed inner payloads should fail upstream.
        wire = relay_id.to_bytes(2, "big") + query.dns_payload[2:]
        relayed = make_udp(source, DOWNGRADE_PORT, upstream, DNS_PORT, wire)
        cpe.trace(
            "intercept",
            relayed,
            f"downgrade-to-53 ({query.protocol}, sni={query.sni}) -> {upstream}",
        )
        cpe.emit_wan(relayed)
        return True

    # -- WAN side -----------------------------------------------------------

    def handle_upstream_response(self, cpe: "CpeDevice", packet: Packet) -> None:
        """Re-encrypt one plaintext answer and deliver it to the client."""
        assert packet.udp is not None
        wire = packet.udp.payload
        if len(wire) < 2:
            cpe.trace("drop", packet, "downgrade: short upstream response")
            return
        pending = self._pending.pop(int.from_bytes(wire[:2], "big"), None)
        if pending is None:
            cpe.trace("drop", packet, "downgrade: unexpected upstream id")
            return
        restored = pending.query.dns_payload[:2] + wire[2:]
        framed = wrap_encrypted_response(pending.query, restored, CPE_TLS_IDENTITY)
        reply = make_udp(
            pending.original_dst,
            pending.dport,
            pending.client_addr,
            pending.client_port,
            framed,
        )
        cpe.trace(
            "send",
            reply,
            f"re-encrypted downgraded answer ({pending.query.protocol}, "
            "spoofed source)",
        )
        cpe.emit_lan(reply)

    # -- helpers ------------------------------------------------------------

    def _allocate_id(self) -> int:
        self._next_relay_id = (self._next_relay_id + 1) & 0xFFFF
        while self._next_relay_id in self._pending:
            self._next_relay_id = (self._next_relay_id + 1) & 0xFFFF
        return self._next_relay_id

    @property
    def pending_count(self) -> int:
        return len(self._pending)
