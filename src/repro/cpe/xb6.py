"""The Arris/Technicolor XB6 gateway — the paper's §5 case study.

The XB6 (and its successor XB7) is a DOCSIS gateway designed by Comcast,
manufactured by Arris and Technicolor, and rented to customers by many
ISPs (Comcast, Shaw, Vodafone, Liberty Global, ...). It runs RDK-B, the
Reference Design Kit for Broadband, whose DNS component — **XDNS**
("Xfinity DNS", CcspXDNS) — can redirect DNS with a firewall DNAT rule.
The feature exists to implement opt-in malware filtering; the paper found
units where a bug left the redirection on for *all* queries, silently
overriding the user's resolver choice.

This module reproduces the mechanism at the packet level: the same
PREROUTING rule shape as RDK-B's ``firewall.c``, the XDNS forwarder
answering ``version.bind``, and the spoofed-source reply that makes the
hijack invisible to the client.
"""

from __future__ import annotations

from typing import Optional

from repro.net.addr import IPAddress, IPNetwork

from .device import CpeDevice
from .firmware import xb6_profile
from .forwarder import ForwarderEngine
from repro.resolvers.software import xdns

#: The RDK-B firewall source the paper cites (CcspUtopia firewall.c).
RDKB_FIREWALL_EXCERPT = """\
# RDK-B (CcspUtopia) source/firewall/firewall.c — DNS redirection,
# as generated on an affected XB6 (paraphrased):
#   iptables -t nat -A PREROUTING -i brlan0 -p udp --dport 53 \\
#       -j DNAT --to-destination <gateway-ip>
#   iptables -t nat -A PREROUTING -i brlan0 -p tcp --dport 53 \\
#       -j DNAT --to-destination <gateway-ip>
# Every DNS packet entering from the LAN bridge is rewritten to the
# gateway itself, where the XDNS forwarder relays it to the ISP resolver."""


def build_xb6(
    name: str,
    lan_v4_prefix: "str | IPNetwork",
    wan_v4: "str | IPAddress",
    wan_gateway: str,
    lan_host: str,
    isp_resolver_v4: "str | IPAddress",
    isp_resolver_v6: "str | IPAddress | None" = None,
    wan_v6: "str | IPAddress | None" = None,
    lan_v6_prefix: "str | IPNetwork | None" = None,
    buggy: bool = True,
    xdns_version: str = "1.0",
    asn: Optional[int] = None,
) -> CpeDevice:
    """Instantiate an XB6 gateway.

    With ``buggy=True`` (the units §5 describes) the XDNS DNAT rule is
    installed unconditionally, so every IPv4 DNS query from the home is
    redirected to ``isp_resolver_v4`` regardless of its destination. With
    ``buggy=False`` the filtering service is present but dormant, and the
    gateway behaves like any honest router.
    """
    engine = ForwarderEngine(
        software=xdns(xdns_version),
        upstream_v4=isp_resolver_v4,
        upstream_v6=isp_resolver_v6,
    )
    device = CpeDevice(
        name=name,
        lan_v4_prefix=lan_v4_prefix,
        wan_v4=wan_v4,
        wan_gateway=wan_gateway,
        lan_host=lan_host,
        wan_v6=wan_v6,
        lan_v6_prefix=lan_v6_prefix,
        forwarder=engine,
        wan_port53_open=False,
        model="XB6",
        asn=asn,
        # Buggy XDNS units downgrade encrypted transports too: the
        # session terminates on the gateway's certificate and the query
        # is forced through the ISP resolver over plaintext (§5's DNAT
        # redirection, applied one layer up).
        encrypted_dns=xb6_profile(buggy=buggy).encrypted_dns,
    )
    if buggy:
        device.enable_interception(family=4)
    return device


def describe_mechanism(device: CpeDevice) -> str:
    """Human-readable description of an XB6's interception state."""
    lines = [
        f"Model: {device.model} (RDK-B / XDNS)",
        f"WAN address: {device.wan_v4}",
        f"LAN gateway: {device.lan_gateway_v4}",
        f"Intercepting IPv4: {device.intercepts_family(4)}",
        f"Intercepting IPv6: {device.intercepts_family(6)}",
        "",
        RDKB_FIREWALL_EXCERPT,
        "",
        "Active PREROUTING chain:",
        device.render_firewall(),
    ]
    if device.forwarder is not None:
        lines.append("")
        lines.append(
            f"XDNS forwarder: {device.forwarder.software.label}, "
            f"upstream {device.forwarder.upstream_v4}"
        )
    return "\n".join(lines)
