"""The scenario catalog: named, validated, fingerprinted study bundles.

A *scenario* is a JSON file bundling everything one reproducible
experiment needs — population knobs, study settings (detector,
transport, impairment, retries) and a :class:`~repro.campaigns.schedule.
CampaignSchedule` — so "run the ISP-policy-flip study" is one name, not
a dozen CLI flags. Files live in a catalog directory (``scenarios/`` in
the repo), load through a strict validator (unknown keys are rejected at
every level: a typo'd knob must never silently fall back to a default),
and carry a content fingerprint that names exactly what would run.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass
from typing import Any, Optional

from repro.atlas.population import PopulationConfig, population_config_from_dict
from repro.atlas.retry import ExponentialBackoffRetry
from repro.core.study import StudyConfig
from repro.net.impairment import IMPAIRMENT_PROFILES, impairment_profile
from repro.store.journal import canonical_value, fingerprint

from .schedule import (
    FIRMWARE_PROFILES,
    CampaignSchedule,
    ChurnSpec,
    FirmwareUpgrade,
    PolicyFlip,
)

#: Where ``repro scenarios`` / ``repro campaign`` look by default.
DEFAULT_SCENARIO_DIR = "scenarios"

_STUDY_KEYS = (
    "detector",
    "transport",
    "evasion",
    "fingerprint",
    "impairment",
    "retries",
    "run_transparency",
)


class ScenarioError(Exception):
    """A scenario file is missing, malformed, or fails validation."""


@dataclass(frozen=True)
class ScenarioBundle:
    """One catalog entry, fully resolved into runnable config objects."""

    name: str
    description: str
    population: PopulationConfig
    study: StudyConfig
    schedule: CampaignSchedule

    def canonical(self) -> Any:
        """Deterministic JSON-ready form of the bundle (for hashing)."""
        return canonical_value(
            {
                "name": self.name,
                "population": self.population,
                "schedule": self.schedule,
            }
        )

    def fingerprint(self) -> str:
        """Content hash naming exactly what this scenario would run.

        ``workers``/``engine`` never enter (the study config is reduced
        to its semantic export dict), so the same scenario prints the
        same fingerprint on any machine.
        """
        from repro.analysis.export import config_to_dict

        return fingerprint(
            {
                "kind": "scenario",
                "bundle": self.canonical(),
                "config": config_to_dict(self.study),
            }
        )

    def summary(self) -> dict:
        """The ``repro scenarios list/show`` row."""
        return {
            "name": self.name,
            "description": self.description,
            "fingerprint": self.fingerprint(),
            "fleet_size": self.population.size,
            "seed": self.population.seed,
            "epochs": self.schedule.epochs,
            "detector": self.study.detector,
            "transport": self.study.transport,
            "evasion": self.study.evasion,
            "churn": {
                "leave_rate": self.schedule.churn.leave_rate,
                "join_rate": self.schedule.churn.join_rate,
            },
            "firmware_upgrades": [
                dataclasses.asdict(event)
                for event in self.schedule.firmware_upgrades
            ],
            "policy_flips": [
                dataclasses.asdict(event) for event in self.schedule.policy_flips
            ],
        }


# -- validation ---------------------------------------------------------------


def _require_mapping(value: Any, where: str) -> dict:
    if not isinstance(value, dict):
        raise ScenarioError(f"{where} must be a JSON object, got {type(value).__name__}")
    return value


def _reject_unknown(data: dict, allowed: tuple, where: str) -> None:
    unknown = set(data) - set(allowed)
    if unknown:
        raise ScenarioError(
            f"{where}: unknown keys {sorted(unknown)}; known: {sorted(allowed)}"
        )


def _parse_study(data: dict, seed: int, where: str) -> StudyConfig:
    _reject_unknown(data, _STUDY_KEYS, where)
    kwargs: dict = {
        "seed": seed,
        # Longitudinal journals hold records only (no metrics segments).
        "metrics": False,
    }
    for key in ("detector", "transport"):
        if key in data:
            value = data[key]
            if not isinstance(value, str):
                raise ScenarioError(f"{where}.{key} must be a string")
            kwargs[key] = value
    for key in ("evasion", "fingerprint", "run_transparency"):
        if key in data:
            value = data[key]
            if not isinstance(value, bool):
                raise ScenarioError(f"{where}.{key} must be a boolean")
            kwargs[key] = value
    if "impairment" in data:
        name = data["impairment"]
        if not isinstance(name, str) or name not in IMPAIRMENT_PROFILES:
            raise ScenarioError(
                f"{where}.impairment must be one of "
                f"{sorted(IMPAIRMENT_PROFILES)}, got {name!r}"
            )
        kwargs["impairment"] = impairment_profile(name)
        kwargs["impairment_seed"] = seed
    if "retries" in data:
        retries = data["retries"]
        if not isinstance(retries, int) or isinstance(retries, bool) or retries < 0:
            raise ScenarioError(f"{where}.retries must be an integer >= 0")
        if retries > 0:
            kwargs["retry"] = ExponentialBackoffRetry(retries=retries, seed=seed)
    try:
        return StudyConfig(**kwargs)
    except ValueError as exc:
        raise ScenarioError(f"{where}: {exc}") from exc


def _parse_event(data: dict, cls, where: str):
    fields = tuple(f.name for f in dataclasses.fields(cls))
    _reject_unknown(data, fields, where)
    try:
        return cls(**data)
    except (TypeError, ValueError) as exc:
        raise ScenarioError(f"{where}: {exc}") from exc


def _parse_schedule(data: dict, where: str) -> CampaignSchedule:
    _reject_unknown(
        data, ("epochs", "churn", "firmware_upgrades", "policy_flips"), where
    )
    if "epochs" not in data:
        raise ScenarioError(f"{where}: missing required key 'epochs'")
    kwargs: dict = {}
    epochs = data["epochs"]
    if not isinstance(epochs, int) or isinstance(epochs, bool):
        raise ScenarioError(f"{where}.epochs must be an integer")
    kwargs["epochs"] = epochs
    if "churn" in data:
        churn = _require_mapping(data["churn"], f"{where}.churn")
        kwargs["churn"] = _parse_event(churn, ChurnSpec, f"{where}.churn")
    for key, cls in (
        ("firmware_upgrades", FirmwareUpgrade),
        ("policy_flips", PolicyFlip),
    ):
        if key in data:
            events = data[key]
            if not isinstance(events, list):
                raise ScenarioError(f"{where}.{key} must be a JSON array")
            kwargs[key] = tuple(
                _parse_event(
                    _require_mapping(event, f"{where}.{key}[{index}]"),
                    cls,
                    f"{where}.{key}[{index}]",
                )
                for index, event in enumerate(events)
            )
    try:
        return CampaignSchedule(**kwargs)
    except ValueError as exc:
        raise ScenarioError(f"{where}: {exc}") from exc


def bundle_from_dict(data: dict, where: str = "scenario") -> ScenarioBundle:
    """Validate plain JSON data into a :class:`ScenarioBundle`."""
    data = _require_mapping(data, where)
    _reject_unknown(
        data, ("name", "description", "population", "study", "schedule"), where
    )
    for key in ("name", "population", "schedule"):
        if key not in data:
            raise ScenarioError(f"{where}: missing required key {key!r}")
    name = data["name"]
    if not isinstance(name, str) or not name:
        raise ScenarioError(f"{where}.name must be a non-empty string")
    description = data.get("description", "")
    if not isinstance(description, str):
        raise ScenarioError(f"{where}.description must be a string")
    try:
        population = population_config_from_dict(
            _require_mapping(data["population"], f"{where}.population")
        )
    except (TypeError, ValueError) as exc:
        raise ScenarioError(f"{where}.population: {exc}") from exc
    study = _parse_study(
        _require_mapping(data.get("study", {}), f"{where}.study"),
        population.seed,
        f"{where}.study",
    )
    schedule = _parse_schedule(
        _require_mapping(data["schedule"], f"{where}.schedule"),
        f"{where}.schedule",
    )
    return ScenarioBundle(
        name=name,
        description=description,
        population=population,
        study=study,
        schedule=schedule,
    )


# -- catalog loading ----------------------------------------------------------


def load_bundle(path: str) -> ScenarioBundle:
    """Load and validate one scenario file."""
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as exc:
        raise ScenarioError(f"{path}: {exc}") from exc
    except ValueError as exc:
        raise ScenarioError(f"{path}: invalid JSON: {exc}") from exc
    return bundle_from_dict(data, where=path)


def load_catalog(directory: str = DEFAULT_SCENARIO_DIR) -> list[ScenarioBundle]:
    """Every scenario in the catalog directory, sorted by file name.

    Duplicate scenario names across files are an error — a name must
    resolve to exactly one bundle.
    """
    if not os.path.isdir(directory):
        raise ScenarioError(f"scenario directory not found: {directory}")
    bundles: list[ScenarioBundle] = []
    seen: dict[str, str] = {}
    for entry in sorted(os.listdir(directory)):
        if not entry.endswith(".json"):
            continue
        path = os.path.join(directory, entry)
        bundle = load_bundle(path)
        if bundle.name in seen:
            raise ScenarioError(
                f"duplicate scenario name {bundle.name!r}: "
                f"{seen[bundle.name]} and {path}"
            )
        seen[bundle.name] = path
        bundles.append(bundle)
    return bundles


def find_bundle(
    name: str, directory: str = DEFAULT_SCENARIO_DIR
) -> ScenarioBundle:
    """Resolve a scenario by name, with the catalog in the error."""
    bundles = load_catalog(directory)
    for bundle in bundles:
        if bundle.name == name:
            return bundle
    known = ", ".join(sorted(bundle.name for bundle in bundles)) or "(none)"
    raise ScenarioError(f"unknown scenario {name!r}; catalog: {known}")


__all__ = [
    "DEFAULT_SCENARIO_DIR",
    "ScenarioBundle",
    "ScenarioError",
    "bundle_from_dict",
    "find_bundle",
    "load_bundle",
    "load_catalog",
]
