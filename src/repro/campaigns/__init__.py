"""``repro.campaigns`` — the longitudinal campaign service.

Three layers on top of :mod:`repro.store`:

- :mod:`~repro.campaigns.catalog` — named, validated, fingerprinted
  scenario bundles loaded from ``scenarios/*.json``;
- :mod:`~repro.campaigns.schedule` — the recurring campaign engine:
  run a catalog scenario at epochs over a time-varying fleet (seeded
  churn, firmware upgrades, ISP policy flips), journaling each epoch
  into one longitudinal store, deterministic per ``(seed, epoch)`` and
  worker-invariant;
- :mod:`~repro.campaigns.aggregate` — incremental aggregation folding
  newly-appended journal segments into persisted epoch/trend tables
  without rescanning the archive.

``repro serve`` (:mod:`repro.serve`) exposes the aggregation read-only
over HTTP.
"""

from .aggregate import (
    STATE_SCHEMA,
    TABLES_DIR,
    TREND_NAME,
    StoreAggregator,
    canonical_json,
    load_epoch_page,
)
from .catalog import (
    DEFAULT_SCENARIO_DIR,
    ScenarioBundle,
    ScenarioError,
    bundle_from_dict,
    find_bundle,
    load_bundle,
    load_catalog,
)
from .schedule import (
    FIRMWARE_PROFILES,
    FLIP_ACTIONS,
    CampaignSchedule,
    ChurnSpec,
    FirmwareUpgrade,
    LongitudinalCampaign,
    PolicyFlip,
    run_campaign,
)

__all__ = [
    "CampaignSchedule",
    "ChurnSpec",
    "DEFAULT_SCENARIO_DIR",
    "FIRMWARE_PROFILES",
    "FLIP_ACTIONS",
    "FirmwareUpgrade",
    "LongitudinalCampaign",
    "PolicyFlip",
    "STATE_SCHEMA",
    "ScenarioBundle",
    "ScenarioError",
    "StoreAggregator",
    "TABLES_DIR",
    "TREND_NAME",
    "bundle_from_dict",
    "canonical_json",
    "find_bundle",
    "load_bundle",
    "load_catalog",
    "load_epoch_page",
    "run_campaign",
]
