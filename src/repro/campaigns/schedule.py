"""Recurring campaigns over a time-varying fleet.

The pilot study is a snapshot; the phenomenon it measures — CPE
interception, firmware pushes, ISP policy — drifts over months. A
:class:`CampaignSchedule` describes that drift as a sequence of
*epochs*: at each epoch the fleet is re-derived (probes churn in and
out, firmware upgrades land, ISP policies flip) and the whole detector
pipeline runs again, journaling the epoch's records as segments into
one longitudinal :class:`~repro.store.ResultStore`.

Determinism contract
--------------------

The fleet at epoch ``e`` is a **pure function of (bundle, seed, e)**:

- every churn / upgrade / flip draw comes from a per-probe, per-concern
  RNG stream seeded from ``(population seed, probe_id, salt)`` — never
  from a shared stream whose position depends on evaluation order;
- membership and transformations are *monotone* in ``e`` (a probe that
  left stays gone, an upgraded firmware stays upgraded), and epoch
  ``e``'s fleet can be derived without deriving any other epoch.

Because each probe's measurement is itself a pure function of its spec,
the journal (records appended in fleet order per epoch) and every
derived epoch table are byte-identical for any worker count, and
identical whether the campaign ran uninterrupted or was killed on a
probe budget and resumed.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from random import Random
from typing import TYPE_CHECKING, Callable, Optional

from repro.atlas.population import PopulationGenerator, generate_population
from repro.atlas.probe import ProbeSpec
from repro.cpe.firmware import (
    dnat_interceptor,
    honest_forwarder,
    honest_router,
    open_wan_forwarder,
    pihole_profile,
    xb6_profile,
)
from repro.interceptors.policy import InterceptMode, intercept_all
from repro.store.journal import canonical_value, fingerprint

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.study import ProbeRecord, StudyConfig
    from repro.store import ResultStore

    from .catalog import ScenarioBundle

#: Firmware profiles an upgrade event may install, by catalog name.
#: The interesting trajectories are spelled out: a buggy XB6 fleet
#: patched to the fixed build is the paper's §5 story played forward.
FIRMWARE_PROFILES: dict[str, Callable[[], object]] = {
    "honest": honest_router,
    "lan-forwarder": honest_forwarder,
    "open-forwarder": open_wan_forwarder,
    "dnat": dnat_interceptor,
    "pihole": pihole_profile,
    "xb6-buggy": lambda: xb6_profile(buggy=True),
    "xb6-fixed": lambda: xb6_profile(buggy=False),
}

#: Policy-flip actions a schedule may apply mid-study.
FLIP_ACTIONS = ("stop-intercepting", "start-intercepting")

#: Per-concern RNG salts (distinct streams per probe per concern).
_SALT_LEAVE = 0x1EAF
_SALT_JOINER_LEAVE = 0x2EAF
_SALT_FIRMWARE = 0xF17
_SALT_FLIP = 0xF11B

#: Joiner probe_ids live far above the generator's 10_000+index range.
_JOINER_ID_BASE = 500_000


@dataclass(frozen=True)
class ChurnSpec:
    """Seeded membership churn: per-epoch leave/join rates."""

    leave_rate: float = 0.0
    join_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("leave_rate", "join_rate"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {value}")


@dataclass(frozen=True)
class FirmwareUpgrade:
    """From ``epoch`` on, probes whose CPE model matches get the named
    profile (a seeded ``fraction`` of them — staged rollouts)."""

    epoch: int
    match_model: str
    profile: str
    fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.epoch < 1:
            raise ValueError(f"upgrade epoch must be >= 1, got {self.epoch}")
        if self.profile not in FIRMWARE_PROFILES:
            raise ValueError(
                f"unknown firmware profile {self.profile!r}; "
                f"known: {sorted(FIRMWARE_PROFILES)}"
            )
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {self.fraction}")


@dataclass(frozen=True)
class PolicyFlip:
    """From ``epoch`` on, a seeded fraction of eligible probes' ISPs
    flip policy: interceptors go clean, or clean ISPs start
    redirecting everything (bogons included)."""

    epoch: int
    action: str
    fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.epoch < 1:
            raise ValueError(f"flip epoch must be >= 1, got {self.epoch}")
        if self.action not in FLIP_ACTIONS:
            raise ValueError(
                f"unknown flip action {self.action!r}; known: {FLIP_ACTIONS}"
            )
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {self.fraction}")


@dataclass(frozen=True)
class CampaignSchedule:
    """The time axis of a scenario bundle: how many epochs, and what
    changes between them."""

    epochs: int
    churn: ChurnSpec = ChurnSpec()
    firmware_upgrades: tuple[FirmwareUpgrade, ...] = ()
    policy_flips: tuple[PolicyFlip, ...] = ()

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")


class LongitudinalCampaign:
    """Runs a catalog scenario at epochs over its time-varying fleet."""

    def __init__(self, bundle: "ScenarioBundle") -> None:
        self.bundle = bundle
        self.schedule = bundle.schedule
        self.seed = bundle.population.seed
        self._base = generate_population(config=bundle.population)
        self._joiners = self._joiner_pool()
        self._fleet_cache: dict[int, list[ProbeSpec]] = {}

    # -- fleet derivation ---------------------------------------------------

    def _stream(self, probe_id: int, salt: int) -> Random:
        return Random((self.seed * 1_000_003 + probe_id) * 1_000_033 + salt)

    def _joins_per_epoch(self) -> int:
        return round(len(self._base) * self.schedule.churn.join_rate)

    def _joiner_pool(self) -> list[ProbeSpec]:
        """Probes waiting to join: generated like the base fleet but on
        a shifted seed, with ids far outside the base range."""
        needed = self._joins_per_epoch() * max(0, self.schedule.epochs - 1)
        if needed == 0:
            return []
        config = dataclasses.replace(
            self.bundle.population, size=needed, seed=self.seed + 7_727
        )
        pool = PopulationGenerator(config).generate()
        return [
            dataclasses.replace(spec, probe_id=_JOINER_ID_BASE + index)
            for index, spec in enumerate(pool)
        ]

    def _leave_epoch(self, probe_id: int, salt: int, first: int) -> Optional[int]:
        """The epoch this probe drops out at (``None`` = stays for the
        whole campaign); monotone by construction."""
        rate = self.schedule.churn.leave_rate
        if rate <= 0.0:
            return None
        rng = self._stream(probe_id, salt)
        for epoch in range(first, self.schedule.epochs):
            if rng.random() < rate:
                return epoch
        return None

    def _transform(self, spec: ProbeSpec, epoch: int) -> ProbeSpec:
        """Apply every upgrade/flip event due by ``epoch``, in declared
        order — pure per ``(probe, epoch)`` and monotone in ``epoch``."""
        for index, upgrade in enumerate(self.schedule.firmware_upgrades):
            if epoch < upgrade.epoch:
                continue
            if spec.firmware.model != upgrade.match_model:
                continue
            if upgrade.fraction < 1.0:
                draw = self._stream(
                    spec.probe_id, _SALT_FIRMWARE + index * 7919
                ).random()
                if draw >= upgrade.fraction:
                    continue
            spec = dataclasses.replace(
                spec, firmware=FIRMWARE_PROFILES[upgrade.profile]()
            )
        for index, flip in enumerate(self.schedule.policy_flips):
            if epoch < flip.epoch:
                continue
            if flip.action == "stop-intercepting":
                if not spec.isp.middlebox_policies:
                    continue
                if flip.fraction < 1.0:
                    draw = self._stream(
                        spec.probe_id, _SALT_FLIP + index * 104_729
                    ).random()
                    if draw >= flip.fraction:
                        continue
                spec = dataclasses.replace(
                    spec,
                    isp=dataclasses.replace(spec.isp, middlebox_policies=()),
                )
            else:  # start-intercepting
                if spec.isp.middlebox_policies or spec.firmware.is_interceptor:
                    continue
                if flip.fraction < 1.0:
                    draw = self._stream(
                        spec.probe_id, _SALT_FLIP + index * 104_729
                    ).random()
                    if draw >= flip.fraction:
                        continue
                spec = dataclasses.replace(
                    spec,
                    isp=dataclasses.replace(
                        spec.isp,
                        middlebox_policies=(
                            intercept_all(
                                mode=InterceptMode.REDIRECT,
                                intercept_bogons=True,
                            ),
                        ),
                    ),
                )
        return spec

    def epoch_fleet(self, epoch: int) -> list[ProbeSpec]:
        """The fleet measured at ``epoch``: surviving base probes (in
        base order) then joiners (in join order), each transformed by
        the events due so far."""
        if not 0 <= epoch < self.schedule.epochs:
            raise ValueError(
                f"epoch must be in [0, {self.schedule.epochs}), got {epoch}"
            )
        cached = self._fleet_cache.get(epoch)
        if cached is not None:
            return cached
        fleet: list[ProbeSpec] = []
        for spec in self._base:
            left = self._leave_epoch(spec.probe_id, _SALT_LEAVE, 1)
            if left is not None and left <= epoch:
                continue
            fleet.append(self._transform(spec, epoch))
        per_epoch = self._joins_per_epoch()
        for index, spec in enumerate(self._joiners):
            joined = 1 + index // per_epoch if per_epoch else self.schedule.epochs
            if joined > epoch:
                continue
            left = self._leave_epoch(
                spec.probe_id, _SALT_JOINER_LEAVE, joined + 1
            )
            if left is not None and left <= epoch:
                continue
            fleet.append(self._transform(spec, epoch))
        self._fleet_cache[epoch] = fleet
        return fleet

    def epoch_sizes(self) -> list[int]:
        return [len(self.epoch_fleet(e)) for e in range(self.schedule.epochs)]

    def fingerprint(self) -> str:
        """Content hash of everything the journal depends on: the
        bundle, the semantic study config, and every epoch's derived
        fleet (so a code change that silently alters fleet derivation
        can never mix records into an old journal)."""
        from repro.analysis.export import config_to_dict

        memo: dict = {}
        return fingerprint(
            {
                "kind": "longitudinal",
                "bundle": self.bundle.canonical(),
                "config": config_to_dict(self.bundle.study),
                "fleets": [
                    [canonical_value(spec, memo) for spec in self.epoch_fleet(e)]
                    for e in range(self.schedule.epochs)
                ],
            }
        )

    # -- measurement --------------------------------------------------------

    def _study_config(self, workers: Optional[int]) -> "StudyConfig":
        config = self.bundle.study
        if workers is not None:
            config = dataclasses.replace(config, workers=workers)
        # Longitudinal journals hold records only; metrics segments
        # would need per-epoch snapshot bookkeeping the trend tables
        # don't consume.
        if config.metrics:
            config = dataclasses.replace(config, metrics=False)
        return config

    def run(
        self,
        store: Optional["ResultStore"] = None,
        workers: Optional[int] = None,
        progress: Optional[Callable[[int, int], None]] = None,
        epoch_done: Optional[Callable[[int], None]] = None,
    ) -> "dict[int, list[ProbeRecord]]":
        """Measure every epoch; return records per epoch (fleet order).

        With a store, each epoch's records journal as segments in fleet
        order (the pool's output is re-sorted first, so the journal is
        byte-identical for any worker count); already-journaled
        ``(epoch, index)`` pairs are skipped on resume, and a spent
        probe budget raises
        :class:`~repro.store.StoreInterrupted` mid-epoch, leaving a
        resumable journal. ``epoch_done(epoch)`` fires after an epoch is
        fully journaled — the campaign runner folds aggregation tables
        there, incrementally.
        """
        from repro.core.parallel import measure_fleet

        config = self._study_config(workers)
        if store is None:
            epochs: dict[int, list[ProbeRecord]] = {}
            for epoch in range(self.schedule.epochs):
                epochs[epoch] = measure_fleet(
                    self.epoch_fleet(epoch), config
                ).records
                if epoch_done is not None:
                    epoch_done(epoch)
            return epochs

        from repro.store import StoreInterrupted

        sizes = self.epoch_sizes()
        total = sum(sizes)
        done = store.begin_longitudinal(
            self.fingerprint(),
            sizes,
            {
                "scenario": self.bundle.name,
                "seed": self.seed,
                "config": _export_config_dict(config),
            },
        )
        completed = len(done)
        budget_left = store.probe_budget
        truncated = False
        try:
            for epoch in range(self.schedule.epochs):
                fleet = self.epoch_fleet(epoch)
                remaining = [
                    (index, spec)
                    for index, spec in enumerate(fleet)
                    if (epoch, index) not in done
                ]
                if not remaining:
                    if epoch_done is not None:
                        epoch_done(epoch)
                    continue
                if budget_left is not None:
                    if budget_left <= 0:
                        truncated = True
                        break
                    if len(remaining) > budget_left:
                        remaining = remaining[:budget_left]
                        truncated = True
                records = measure_fleet(
                    [spec for _index, spec in remaining], config
                ).records
                store.append_epoch_segment(
                    epoch,
                    zip((index for index, _spec in remaining), records),
                )
                completed += len(remaining)
                if budget_left is not None:
                    budget_left -= len(remaining)
                if progress is not None:
                    progress(completed, total)
                if truncated:
                    break
                if epoch_done is not None:
                    # The epoch-complete contract is durable: everything
                    # journaled and fsync'd before observers run.
                    store.sync()
                    epoch_done(epoch)
        finally:
            store.sync()
        if truncated:
            raise StoreInterrupted(completed, total)
        epochs = store.collect_epochs()
        store.finalize_longitudinal()
        return epochs


def _export_config_dict(config: "StudyConfig") -> dict:
    from repro.analysis.export import config_to_dict

    return config_to_dict(config)


def run_campaign(
    bundle: "ScenarioBundle",
    store: Optional["ResultStore"] = None,
    workers: Optional[int] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    epoch_done: Optional[Callable[[int], None]] = None,
) -> "dict[int, list[ProbeRecord]]":
    """Convenience wrapper: build the campaign and run it."""
    return LongitudinalCampaign(bundle).run(
        store=store, workers=workers, progress=progress, epoch_done=epoch_done
    )
