"""Incremental aggregation: fold journal segments into epoch tables.

A longitudinal journal grows for months; rescanning it end-to-end to
answer "how did the interception rate trend?" would make every refresh
cost the whole archive. :class:`StoreAggregator` instead keeps a byte
cursor per shard (:func:`~repro.store.read_journal_tail`) plus running
per-epoch counters, so one ``refresh()`` costs only the segments
appended since the last one — O(new data), proven by
``benchmarks/bench_store.py --incremental``.

The invariant the tests pin: folding segments incrementally (any
refresh cadence, including one refresh per appended batch) produces
tables byte-identical to a fresh aggregator rescanning the whole
journal. First-wins dedupe by ``(epoch, index)`` matches
``ResultStore.collect_epochs``, so a resumed campaign's replayed tail
can never double-count.

With ``persist=True`` the cursor and counters round-trip through
``tables/state.json`` (written atomically), and every refresh also
materialises ``tables/epoch-NNNN.json`` plus ``tables/trend.json`` —
the files ``repro campaign tables/trend`` and ``repro serve`` answer
from.
"""

from __future__ import annotations

import json
import os
from typing import Any, Optional

from repro.ioutil import atomic_write_text
from repro.store import (
    JOURNAL_DIR,
    RECORDS_PREFIX,
    StoreError,
    load_manifest,
    read_journal,
    read_journal_tail,
)

#: Subdirectory of a store holding persisted aggregation output.
TABLES_DIR = "tables"
STATE_NAME = "state.json"
TREND_NAME = "trend.json"

#: Bumped when the table shape changes; a persisted state from another
#: schema is discarded and rebuilt from the journal.
STATE_SCHEMA = 1

_COUNTER_KEYS = (
    "verdicts",
    "transparency",
    "true_locations",
    "evasion_outcomes",
    "cert_verdicts",
    "agreement",
)


def canonical_json(payload: Any) -> str:
    """The one serialisation every table/endpoint uses.

    Sorted keys, two-space indent, trailing newline — so the serve API
    and the offline CLI can be compared with ``cmp``, byte for byte.
    """
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _empty_epoch_state() -> dict:
    state: dict = {"seen": set(), "online": 0}
    for key in _COUNTER_KEYS:
        state[key] = {}
    return state


def _ranges_from_indices(indices: set) -> list[list[int]]:
    """Compress an index set to sorted ``[start, end]`` ranges.

    Campaigns journal epochs in fleet order, so ``seen`` is almost
    always one contiguous run — persisting ranges keeps ``state.json``
    (and the cost of every incremental refresh) independent of how many
    probes the archive already holds.
    """
    ranges: list[list[int]] = []
    for index in sorted(indices):
        if ranges and index == ranges[-1][1] + 1:
            ranges[-1][1] = index
        else:
            ranges.append([index, index])
    return ranges


def _indices_from_ranges(ranges) -> set:
    indices: set = set()
    for start, end in ranges:
        indices.update(range(int(start), int(end) + 1))
    return indices


class StoreAggregator:
    """Folds a (possibly live) result store into per-epoch trend tables."""

    def __init__(self, path: str, persist: bool = False) -> None:
        self.path = path
        self.persist = persist
        self.journal_path = os.path.join(path, JOURNAL_DIR)
        self.tables_path = os.path.join(path, TABLES_DIR)
        self._cursor: dict = {}
        self._epochs: dict[int, dict] = {}
        self._dirty: set[int] = set()
        self._manifest: Optional[dict] = None
        self._loaded = False

    # -- persisted state ----------------------------------------------------

    def _state_path(self) -> str:
        return os.path.join(self.tables_path, STATE_NAME)

    def _load_state(self) -> None:
        self._loaded = True
        if not self.persist:
            return
        try:
            with open(self._state_path(), encoding="utf-8") as handle:
                state = json.load(handle)
        except (OSError, ValueError):
            return  # no prior state (or unreadable) — rebuild from scratch
        if state.get("schema") != STATE_SCHEMA:
            return
        self._cursor = dict(state.get("cursor", {}))
        for key, folded in state.get("epochs", {}).items():
            epoch_state = _empty_epoch_state()
            epoch_state["seen"] = _indices_from_ranges(folded.get("seen", ()))
            epoch_state["online"] = int(folded.get("online", 0))
            for counter in _COUNTER_KEYS:
                epoch_state[counter] = dict(folded.get(counter, {}))
            self._epochs[int(key)] = epoch_state

    def _dump_state(self) -> dict:
        return {
            "schema": STATE_SCHEMA,
            "cursor": self._cursor,
            "epochs": {
                str(epoch): {
                    "seen": _ranges_from_indices(state["seen"]),
                    "online": state["online"],
                    **{key: state[key] for key in _COUNTER_KEYS},
                }
                for epoch, state in self._epochs.items()
            },
        }

    # -- folding ------------------------------------------------------------

    def _fold(self, entry: dict) -> None:
        epoch = int(entry.get("e", 0))
        index = int(entry["i"])
        state = self._epochs.setdefault(epoch, _empty_epoch_state())
        if index in state["seen"]:
            return  # resumed campaigns may replay a segment; first wins
        state["seen"].add(index)
        self._dirty.add(epoch)
        record = entry["record"]
        if record.get("online", False):
            state["online"] += 1
        for counter, value in (
            ("verdicts", record.get("verdict")),
            ("transparency", record.get("transparency")),
            ("true_locations", record.get("true_location")),
            ("evasion_outcomes", record.get("evasion_outcome")),
            ("cert_verdicts", record.get("cert_verdict")),
        ):
            if value is None:
                continue
            table = state[counter]
            table[value] = table.get(value, 0) + 1
        cert = record.get("cert_verdict")
        if cert is not None:
            key = f"{record.get('verdict')}|{cert}"
            table = state["agreement"]
            table[key] = table.get(key, 0) + 1

    def refresh(self) -> int:
        """Fold every segment appended since the last refresh; return
        how many new entries were folded.

        Raises :class:`~repro.store.StoreCorruptError` on mid-file
        journal damage — callers (the serve layer) map that to 503, not
        a crash.
        """
        if not self._loaded:
            self._load_state()
        self._manifest = load_manifest(self.path)
        entries, self._cursor = read_journal_tail(
            self.journal_path, RECORDS_PREFIX, self._cursor
        )
        for entry in entries:
            self._fold(entry)
        if self.persist:
            self._persist_tables()
        return len(entries)

    # -- tables -------------------------------------------------------------

    def manifest(self) -> dict:
        if self._manifest is None:
            self._manifest = load_manifest(self.path)
        return self._manifest

    def _epoch_sizes(self) -> list[int]:
        manifest = self.manifest()
        sizes = manifest.get("epoch_sizes")
        if sizes is not None:
            return [int(size) for size in sizes]
        # A plain study/campaign store aggregates as one epoch.
        return [int(manifest.get("fleet_size", 0))]

    def epoch_count(self) -> int:
        return len(self._epoch_sizes())

    def epoch_table(self, epoch: int) -> dict:
        """The aggregation table for one epoch (zeroed if unmeasured)."""
        sizes = self._epoch_sizes()
        if not 0 <= epoch < len(sizes):
            raise StoreError(
                f"epoch must be in [0, {len(sizes)}), got {epoch}"
            )
        state = self._epochs.get(epoch, _empty_epoch_state())
        measured = len(state["seen"])
        table: dict = {
            "epoch": epoch,
            "fleet_size": sizes[epoch],
            "measured": measured,
            "complete": measured >= sizes[epoch] and sizes[epoch] > 0,
            "online": state["online"],
        }
        for key in _COUNTER_KEYS:
            table[key] = dict(sorted(state[key].items()))
        return table

    def trend(self) -> dict:
        """Every epoch table plus per-metric series, one document."""
        manifest = self.manifest()
        tables = [self.epoch_table(e) for e in range(self.epoch_count())]
        series: dict = {
            "measured": [table["measured"] for table in tables],
            "online": [table["online"] for table in tables],
        }
        for key in ("verdicts", "transparency", "evasion_outcomes"):
            names = sorted({name for table in tables for name in table[key]})
            series[key] = {
                name: [table[key].get(name, 0) for table in tables]
                for name in names
            }
        return {
            "schema": STATE_SCHEMA,
            "kind": manifest.get("kind"),
            "scenario": manifest.get("scenario"),
            "seed": manifest.get("seed"),
            "fingerprint": manifest.get("fingerprint"),
            "complete": bool(manifest.get("complete", False)),
            "epochs": tables,
            "series": series,
        }

    def _persist_tables(self) -> None:
        os.makedirs(self.tables_path, exist_ok=True)
        atomic_write_text(
            self._state_path(), canonical_json(self._dump_state())
        )
        for epoch in range(self.epoch_count()):
            path = os.path.join(self.tables_path, f"epoch-{epoch:04d}.json")
            # Only touched epochs are re-materialised, so a refresh's
            # write cost tracks the new segments, not the archive.
            if epoch in self._dirty or not os.path.exists(path):
                atomic_write_text(path, canonical_json(self.epoch_table(epoch)))
        atomic_write_text(
            os.path.join(self.tables_path, TREND_NAME),
            canonical_json(self.trend()),
        )
        self._dirty.clear()


def load_epoch_page(
    path: str, epoch: int, offset: int = 0, limit: int = 50
) -> dict:
    """Probe-level drill-down: one page of an epoch's records.

    Reads the tolerant full journal (the page endpoint is rare and
    exact, unlike the hot trend path), dedupes first-wins by index,
    sorts by fleet index and slices.
    """
    if offset < 0 or limit < 1:
        raise ValueError("offset must be >= 0 and limit >= 1")
    by_index: dict[int, dict] = {}
    for entry in read_journal(os.path.join(path, JOURNAL_DIR), RECORDS_PREFIX):
        if int(entry.get("e", 0)) != epoch:
            continue
        by_index.setdefault(int(entry["i"]), entry["record"])
    indices = sorted(by_index)
    page = indices[offset : offset + limit]
    return {
        "epoch": epoch,
        "total": len(indices),
        "offset": offset,
        "limit": limit,
        "probes": [
            {"index": index, "record": by_index[index]} for index in page
        ],
    }


__all__ = [
    "STATE_SCHEMA",
    "TABLES_DIR",
    "TREND_NAME",
    "StoreAggregator",
    "canonical_json",
    "load_epoch_page",
]
