"""``repro.atlas`` — the RIPE-Atlas-style measurement substrate.

A calibrated synthetic probe fleet (the paper used ~10k real RIPE Atlas
probes; we generate households whose measured aggregates land on the
paper's published shapes), per-probe scenario construction, and the
measurement client that performs validated DNS exchanges over the
simulated network.
"""

from .campaign import (
    Campaign,
    MeasurementDefinition,
    MeasurementRow,
    definition_from_dict,
    row_from_dict,
)
from .geo import (
    ORGANIZATIONS,
    Organization,
    countries,
    organization_by_asn,
    organization_by_name,
)
from .measurement import (
    DEFAULT_TIMEOUT_MS,
    DnsExchangeResult,
    DohExchangeResult,
    DoqExchangeResult,
    DotExchangeResult,
    EncryptedExchangeResult,
    ExchangeResult,
    ExchangeStatus,
    MeasurementClient,
    dns_exchange,
    dot_exchange,
)
from .population import (
    CPE_TRUE_SOFTWARE,
    PROVIDERS,
    PopulationConfig,
    PopulationGenerator,
    example_probe_specs,
    generate_population,
)
from .probe import InterceptorLocation, IspBehavior, ProbeSpec
from .retry import (
    ExponentialBackoffRetry,
    FixedIntervalRetry,
    RetryPolicy,
    default_chaos_retry,
)
from .scenario import (
    HOSTED_DNS_V4_PREFIX,
    Scenario,
    ScenarioSpec,
    build_scenario,
    resolver_software,
)
from .transport import (
    ENCRYPTED_TRANSPORTS,
    TRANSPORTS,
    doh_exchange,
    doq_exchange,
    resolve,
    udp53_exchange,
)

__all__ = [
    "Campaign",
    "MeasurementDefinition",
    "definition_from_dict",
    "MeasurementRow",
    "row_from_dict",
    "ORGANIZATIONS",
    "Organization",
    "countries",
    "organization_by_asn",
    "organization_by_name",
    "DEFAULT_TIMEOUT_MS",
    "DnsExchangeResult",
    "DohExchangeResult",
    "DoqExchangeResult",
    "DotExchangeResult",
    "EncryptedExchangeResult",
    "ExchangeResult",
    "ExchangeStatus",
    "dot_exchange",
    "MeasurementClient",
    "dns_exchange",
    "ENCRYPTED_TRANSPORTS",
    "TRANSPORTS",
    "resolve",
    "doh_exchange",
    "doq_exchange",
    "udp53_exchange",
    "CPE_TRUE_SOFTWARE",
    "PROVIDERS",
    "PopulationConfig",
    "PopulationGenerator",
    "example_probe_specs",
    "generate_population",
    "InterceptorLocation",
    "IspBehavior",
    "ProbeSpec",
    "ExponentialBackoffRetry",
    "FixedIntervalRetry",
    "RetryPolicy",
    "default_chaos_retry",
    "HOSTED_DNS_V4_PREFIX",
    "Scenario",
    "ScenarioSpec",
    "build_scenario",
    "resolver_software",
]
