"""The transport registry: one ``resolve()`` for every DNS transport.

Before this module, each transport forked the exchange path —
``dns_exchange`` for UDP/53, ``dot_exchange`` for DoT — and every new
protocol would have forked it again. The registry inverts that: a
transport is an entry in :data:`TRANSPORTS` mapping its name to an
exchange function with a uniform signature, and :func:`resolve` is the
single front door callers use.

Supported transports:

``udp53``
    Plain Do53 over UDP, with stub-style retransmission via any
    :class:`~repro.atlas.retry.RetryPolicy`. Returns a
    :class:`~repro.atlas.measurement.DnsExchangeResult`.
``dot``
    DNS-over-TLS (abstracted): single send, identity validation per the
    strict/opportunistic privacy profile. Returns a
    :class:`~repro.atlas.measurement.DotExchangeResult`.
``doh``
    DNS-over-HTTPS: GET or POST wire shape, identity validation as DoT,
    plus the HTTP status. Returns a
    :class:`~repro.atlas.measurement.DohExchangeResult`.
``doq``
    DNS-over-QUIC: fresh connection + stream 0 per query, server must
    echo the stream id, and a TC-set response is a protocol error that
    the client discards (RFC 9250 forbids truncation — there is no
    retry-over-TCP escape hatch). Returns a
    :class:`~repro.atlas.measurement.DoqExchangeResult`.

All encrypted transports retry at most never: reliability belongs to the
session layer, so ``attempts`` is always 1 and ``retry`` is ignored.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.dnswire import DNS_PORT, Message, decode_or_none
from repro.net import Host, Network
from repro.net.addr import IPAddress, parse_ip
from repro.net.doh import DOH_PORT, unwrap_doh_response, wrap_doh_query
from repro.net.doq import DOQ_PORT, unwrap_doq, wrap_doq
from repro.net.dot import DOT_PORT, unwrap_dot, wrap_dot
from repro.net.node import ReceivedDatagram
from repro.net.packet import DEFAULT_TTL

from .measurement import (
    DEFAULT_TIMEOUT_MS,
    DnsExchangeResult,
    DohExchangeResult,
    DoqExchangeResult,
    DotExchangeResult,
    EncryptedExchangeResult,
    ExchangeResult,
    ExchangeStatus,
    _record_exchange,
)
from .retry import RetryPolicy


def udp53_exchange(
    network: Network,
    host: Host,
    destination: "str | IPAddress",
    query: Message,
    *,
    timeout_ms: float = DEFAULT_TIMEOUT_MS,
    ttl: int = DEFAULT_TTL,
    retry: Optional[RetryPolicy] = None,
    **_ignored,
) -> DnsExchangeResult:
    """Send ``query`` over plain UDP/53 and collect the outcome.

    Runs the simulated network forward until the timeout. All datagrams
    arriving at the ephemeral port are validated: claimed source must be
    ``destination`` and the message id must match. ICMP errors quoting
    this probe's packets are gathered for TTL analysis.

    Retransmissions (same message id, same socket) are governed by
    ``retry`` — any :class:`~repro.atlas.retry.RetryPolicy`, e.g.
    exponential backoff with jitter for chaos studies; None means a
    single transmission. Whatever the policy, the overall ``timeout_ms``
    budget covers all attempts and no retransmission is sent at or past
    the deadline.
    """
    delays = retry.delays_ms(query.msg_id) if retry is not None else []
    destination = parse_ip(destination)
    result = DnsExchangeResult(query=query, destination=destination)
    sock = host.open_socket()
    icmp_mark = len(host.icmp_inbox)

    send_times: list[float] = []

    def classify(datagrams: "list[ReceivedDatagram]") -> None:
        for datagram in datagrams:
            message = decode_or_none(datagram.payload)
            if (
                message is None
                or not message.is_response
                or message.msg_id != query.msg_id
                or datagram.src != destination
                or datagram.sport != DNS_PORT
            ):
                result.rejected.append(datagram)
                continue
            if message.flags.tc:
                # Truncation: the sections of a TC-set response may be
                # cut anywhere, so it is not a complete answer. With no
                # TCP fallback the exchange surfaces TRUNCATED rather
                # than scoring partial content as the real response.
                result.truncated.append(message)
                continue
            result.accepted.append(message)
            if result.response is None:
                result.response = message
                # RTT against the transmission this answer responds to:
                # the most recent send at or before its arrival, not the
                # first one — an answer to the Nth retransmission must
                # not be inflated by N retry intervals.
                earlier = [t for t in send_times if t <= datagram.time]
                sent_at = earlier[-1] if earlier else send_times[0]
                result.rtt_ms = datagram.time - sent_at
                result.status = ExchangeStatus.ANSWERED

    try:
        send_times.append(network.now)
        sock.sendto(query.encode(), destination, DNS_PORT, ttl=ttl)
        deadline = send_times[0] + timeout_ms
        retry_index = 0
        next_retry = send_times[0] + delays[0] if delays else deadline
        while True:
            pending = retry_index < len(delays)
            # A retransmission scheduled at or past the deadline never
            # goes out: the horizon min() stops the clock at the
            # deadline first and the loop exits on the budget check.
            horizon = min(deadline, next_retry) if pending else deadline
            network.run(until=horizon)
            # Validate what arrived *before* deciding whether to keep
            # retrying: a rejected datagram (wrong source/port/id — the
            # off-path junk validation exists to discard) must not
            # cancel the remaining retransmissions.
            classify(sock.drain())
            if result.accepted or result.truncated:
                # A truncated answer is a definite (if unusable) reply
                # from the right source: retransmitting the same UDP
                # query would only get it truncated again.
                break
            if network.now >= deadline or not pending:
                break
            send_times.append(network.now)
            sock.sendto(query.encode(), destination, DNS_PORT, ttl=ttl)
            retry_index += 1
            if retry_index < len(delays):
                next_retry = network.now + delays[retry_index]
        result.attempts = len(send_times)
        if result.response is None and result.truncated:
            result.status = ExchangeStatus.TRUNCATED
        result.icmp = [
            icmp
            for icmp in host.icmp_inbox[icmp_mark:]
            if icmp.quoted is not None
            and icmp.quoted.udp is not None
            and icmp.quoted.udp.sport == sock.port
        ]
    finally:
        sock.close()
    if result.rejected and network.metrics.enabled:
        network.metrics.inc("exchange.rejected_datagrams", len(result.rejected))
    if result.replicated:
        network.metrics.inc("exchange.replicated")
    _record_exchange(network, result)
    return result


def _encrypted_exchange(
    network: Network,
    host: Host,
    destination: "str | IPAddress",
    query: Message,
    result: EncryptedExchangeResult,
    port: int,
    request_wire: bytes,
    unwrap: Callable[[bytes], "Optional[tuple[str, bytes]]"],
    timeout_ms: float,
) -> None:
    """Shared single-send session exchange for DoT/DoH/DoQ.

    ``unwrap`` turns one received payload into ``(server_identity,
    dns_payload)`` or None for frames that are not this protocol's (or
    violate its semantics — the DoQ stream-echo and no-TC rules live in
    the per-transport unwrappers). A rejected session dominates: a
    strict client that refused the interceptor's certificate reports the
    hijack attempt even if the genuine answer also slipped through.
    """
    destination = parse_ip(destination)
    result.destination = destination
    sock = host.open_socket()
    rejected_session = False
    try:
        sent_at = network.now
        sock.sendto(request_wire, destination, port)
        network.run(until=sent_at + timeout_ms)
        for datagram in sock.drain():
            if datagram.src != destination or datagram.sport != port:
                continue
            unwrapped = unwrap(datagram.payload)
            if unwrapped is None:
                continue
            identity, dns_payload = unwrapped
            message = decode_or_none(dns_payload)
            if message is None or message.msg_id != query.msg_id:
                continue
            result.observed_identity = identity
            if result.strict and identity != result.expected_identity:
                rejected_session = True
                continue
            if result.response is None:
                result.response = message
                result.rtt_ms = datagram.time - sent_at
    finally:
        sock.close()
    if rejected_session:
        result.status = ExchangeStatus.IDENTITY_REJECTED
    elif result.response is not None:
        result.status = ExchangeStatus.ANSWERED
    _record_exchange(network, result)


def dot_exchange(
    network: Network,
    host: Host,
    destination: "str | IPAddress",
    query: Message,
    *,
    expected_identity: str = "",
    strict: bool = True,
    timeout_ms: float = DEFAULT_TIMEOUT_MS,
    **_ignored,
) -> DotExchangeResult:
    """Send ``query`` over (abstracted) DNS-over-TLS to port 853.

    The strict profile validates the server identity against
    ``expected_identity``; the opportunistic profile accepts any
    identity — which is precisely why it remains interceptable (§6).
    The client frame carries the dialed name (the SNI an on-path
    interceptor can match on).
    """
    result = DotExchangeResult(
        query=query,
        destination=parse_ip(destination),
        transport="dot",
        expected_identity=expected_identity,
        strict=strict,
    )

    def unwrap(payload: bytes):
        frame = unwrap_dot(payload)
        if frame is None:
            return None
        return frame.server_identity, frame.dns_payload

    _encrypted_exchange(
        network,
        host,
        destination,
        query,
        result,
        DOT_PORT,
        wrap_dot(query.encode(), expected_identity),
        unwrap,
        timeout_ms,
    )
    return result


def doh_exchange(
    network: Network,
    host: Host,
    destination: "str | IPAddress",
    query: Message,
    *,
    expected_identity: str = "",
    strict: bool = True,
    method: str = "POST",
    timeout_ms: float = DEFAULT_TIMEOUT_MS,
    **_ignored,
) -> DohExchangeResult:
    """Send ``query`` over (abstracted) DNS-over-HTTPS to port 443.

    ``method`` selects the RFC 8484 wire shape (``GET`` = base64url
    ``?dns=`` parameter, ``POST`` = raw body). Identity semantics match
    DoT; the HTTP status of the accepted response is recorded, and
    non-2xx responses are protocol errors the client discards.
    """
    result = DohExchangeResult(
        query=query,
        destination=parse_ip(destination),
        transport="doh",
        expected_identity=expected_identity,
        strict=strict,
        method=method,
    )

    def unwrap(payload: bytes):
        response = unwrap_doh_response(payload)
        if response is None:
            return None
        result.http_status = response.status
        if response.status // 100 != 2:
            return None
        return response.server_identity, response.dns_payload

    _encrypted_exchange(
        network,
        host,
        destination,
        query,
        result,
        DOH_PORT,
        wrap_doh_query(query.encode(), expected_identity, method),
        unwrap,
        timeout_ms,
    )
    return result


def doq_exchange(
    network: Network,
    host: Host,
    destination: "str | IPAddress",
    query: Message,
    *,
    expected_identity: str = "",
    strict: bool = True,
    timeout_ms: float = DEFAULT_TIMEOUT_MS,
    **_ignored,
) -> DoqExchangeResult:
    """Send ``query`` over (abstracted) DNS-over-QUIC to port 853.

    Each query gets a fresh connection (a fresh ephemeral port) and runs
    on stream 0; the server must echo the stream id. A response with the
    TC bit set is an RFC 9250 protocol error and is discarded — DoQ has
    no truncation-retry path.
    """
    result = DoqExchangeResult(
        query=query,
        destination=parse_ip(destination),
        transport="doq",
        expected_identity=expected_identity,
        strict=strict,
        stream_id=0,
    )

    def unwrap(payload: bytes):
        frame = unwrap_doq(payload)
        if frame is None or frame.stream_id != result.stream_id:
            return None
        message = decode_or_none(frame.dns_payload)
        if message is not None and message.flags.tc:
            return None  # RFC 9250 §4.3: TC over DoQ is a protocol error
        return frame.server_identity, frame.dns_payload

    _encrypted_exchange(
        network,
        host,
        destination,
        query,
        result,
        DOQ_PORT,
        wrap_doq(query.encode(), expected_identity, result.stream_id),
        unwrap,
        timeout_ms,
    )
    return result


#: The registry ``resolve()`` dispatches over. Every entry shares the
#: ``(network, host, destination, query, **options)`` signature and
#: ignores options foreign to its transport.
TRANSPORTS: dict[str, Callable[..., ExchangeResult]] = {
    "udp53": udp53_exchange,
    "dot": dot_exchange,
    "doh": doh_exchange,
    "doq": doq_exchange,
}

#: Transports that run over an encrypted session (identity-validating).
ENCRYPTED_TRANSPORTS: tuple[str, ...] = ("dot", "doh", "doq")


def resolve(
    client,
    query: Message,
    destination: "str | IPAddress",
    transport: str = "udp53",
    *,
    retry: "RetryPolicy | None | object" = ...,
    expected_identity: str = "",
    strict: bool = True,
    method: str = "POST",
    ttl: int = DEFAULT_TTL,
    timeout_ms: Optional[float] = None,
) -> ExchangeResult:
    """Resolve ``query`` at ``destination`` over the named transport.

    The unified exchange surface: ``client`` is a
    :class:`~repro.atlas.measurement.MeasurementClient` (it supplies the
    network, probe host, timeout and default retry policy), and the
    result is transport-tagged — every transport returns the shared
    :class:`~repro.atlas.measurement.ExchangeResult` shape.

    ``retry`` defaults to the client's configured policy and only
    applies to ``udp53``; encrypted transports ride their session's
    reliability. ``expected_identity``/``strict`` select the privacy
    profile for encrypted transports; ``method`` selects the DoH wire
    shape.
    """
    exchange = TRANSPORTS.get(transport)
    if exchange is None:
        raise ValueError(
            f"unknown transport {transport!r}; expected one of {sorted(TRANSPORTS)}"
        )
    if retry is ...:
        retry = client.effective_retry_policy()
    return exchange(
        client.network,
        client.host,
        destination,
        query,
        timeout_ms=timeout_ms if timeout_ms is not None else client.timeout_ms,
        ttl=ttl,
        retry=retry,
        expected_identity=expected_identity,
        strict=strict,
        method=method,
    )
