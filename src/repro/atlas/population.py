"""Synthetic probe-fleet generation, calibrated to the paper's pilot study.

The generator produces a fleet whose *measured* aggregates land on the
shapes of Table 4 (per-resolver interception counts, IPv4 vs IPv6),
Table 5 (version.bind strings of CPE interceptors), Figure 3 (per-org
interception and transparency) and Figure 4 (interception location).

Calibration notes (derivation in EXPERIMENTS.md):

- Response modelling. Per-probe availability ``a`` plus small
  per-provider nonresponse ``q_r`` reproduce both the differing
  per-resolver totals (9619..9666) and the joint total (9537):
  ``T = N*a ≈ 9673``, ``q_r = total_r / T``.
- Interceptor design counts are the paper's counts inflated by
  ``1/(a*q)`` so the *realized* counts (among responding probes) land
  near the paper's.
- The interception pattern mix solves the Table 4 system: with 112
  all-four interceptors, 66 single-resolver, 47 allow-one and one pair,
  per-resolver design counts hit 161-169, realizing at ≈156-165.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.cpe.firmware import (
    FirmwareProfile,
    dnat_interceptor,
    honest_forwarder,
    honest_router,
    open_wan_forwarder,
    pihole_profile,
)
from repro.interceptors.encrypted import (
    EncryptedAction,
    EncryptedDnsPolicy,
    downgrade_all,
)
from repro.interceptors.policy import (
    InterceptMode,
    InterceptionPolicy,
    allow_only,
    intercept_all,
    intercept_only,
)
from repro.dnswire import RCode
from repro.resolvers.public import PROVIDER_SPECS, Provider
from repro.resolvers.software import (
    ChaosBehavior,
    ServerSoftware,
    bind_debian,
    bind_redhat,
    bind_vanilla,
    dnsmasq,
    microsoft,
    pi_hole,
    powerdns,
    q9,
    quirky,
    silent_forwarder,
    unbound,
    windows_ns,
    xdns,
)

from .geo import ORGANIZATIONS, Organization, organization_by_name
from .probe import IspBehavior, ProbeSpec

#: Provider ordering used for the per-provider response tuples.
PROVIDERS = (Provider.CLOUDFLARE, Provider.GOOGLE, Provider.QUAD9, Provider.OPENDNS)


@dataclass(frozen=True)
class PopulationConfig:
    """Tunable knobs of the fleet generator."""

    size: int = 9800
    seed: int = 2021
    availability: float = 0.987
    #: Per-provider IPv4 response rates (CF, Google, Quad9, OpenDNS).
    response_v4: tuple[float, float, float, float] = (0.99438, 0.99814, 0.99411, 0.99928)
    v6_share: float = 0.3875
    response_v6: tuple[float, float, float, float] = (0.9952, 0.99413, 0.99573, 0.9944)
    #: Design interceptor counts at the reference size; scaled by size/9800.
    cpe_true_count: int = 47
    cpe_misclassified_count: int = 2  # §6 open-forwarder limitation cases
    isp_all_four: int = 46
    isp_single: tuple[int, int, int, int] = (13, 12, 8, 8)
    isp_allow_one: tuple[int, int, int, int] = (8, 9, 8, 7)
    isp_pair: int = 1
    ext_all_four: int = 17
    ext_single: tuple[int, int, int, int] = (8, 7, 5, 5)
    ext_allow_one: tuple[int, int, int, int] = (4, 4, 3, 4)
    #: Of ISP middleboxes: fraction that BLOCK instead of REDIRECT, and
    #: fraction with mixed per-resolver behaviour ("Both" in Figure 3).
    isp_block_share: float = 0.14
    isp_mixed_share: float = 0.08
    #: Fraction of ISP redirects that *replicate* instead (forward the
    #: original AND answer — Liu et al.'s query replication, which the
    #: paper treats as indistinguishable from interception, §3.1).
    isp_replicate_share: float = 0.05
    #: Fraction of in-ISP middleboxes that do not intercept bogon-destined
    #: queries, so Step 3 cannot place them (§3.3 ambiguity).
    isp_bogon_blind_share: float = 0.12
    #: IPv6 interception: probes adding a v6 policy (subset of ISP redirects).
    v6_google_only: int = 15
    v6_three_no_google: int = 11
    #: Fraction of honest probes whose CPE serves DNS to the LAN, and of
    #: those, fraction with WAN port 53 open (the Appendix A confounder).
    honest_forwarder_share: float = 0.35
    honest_wan_open_share: float = 0.05
    #: Encrypted-DNS postures of middlebox interceptors: the fraction
    #: that firewall port 853 (DoT+DoQ blocked, DoH hides in HTTPS) and
    #: the fraction that terminate-and-downgrade all three transports;
    #: the rest have no opinion and pass encrypted sessions through.
    #: Sampled from a dedicated RNG stream so the plaintext fleet stays
    #: byte-identical to pre-encrypted-workload exports.
    middlebox_encrypted_block_share: float = 0.35
    middlebox_encrypted_downgrade_share: float = 0.25
    #: Encrypted-only interceptors: probes whose ISP middlebox leaves
    #: plaintext port 53 untouched but terminates-and-downgrades every
    #: encrypted transport. Invisible to the plaintext locator (the
    #: heuristic scores them clean); the certificate cross-validation
    #: detector flags the foreign per-AS identity. Design count at the
    #: reference size, scaled like the interceptor counts; drawn from
    #: the honest pool *after* the fleet shuffle, on a dedicated RNG.
    encrypted_only_downgrade_count: int = 12
    #: Fraction of in-ISP REDIRECT middleboxes whose alternate resolver
    #: also monetises NXDOMAIN (wildcards unregistered names to an ad
    #: server) — invisible to the resolvable-domain heuristic probes,
    #: caught by the cert detector's NXDOMAIN canary.
    isp_nxdomain_wildcard_share: float = 0.10
    #: The forged address such monetising resolvers answer with.
    nxdomain_wildcard_address: str = "203.0.113.80"


#: version.bind software mix for the 47 true CPE interceptors. Together
#: with the 2 misclassified open forwarders (whose ISP resolvers run
#: unbound 1.9.0), the *measured* Table 5 adds up to the paper's 49:
#: dnsmasq-* 23, dnsmasq-pi-hole-* 8, unbound* 6, *-RedHat 2, ten 1-each.
CPE_TRUE_SOFTWARE: tuple[ServerSoftware, ...] = (
    # 23 dnsmasq (15 of them XB6/RDK-B units -> the case-study models)
    *[xdns("2.85") for _ in range(15)],
    *[dnsmasq("2.80") for _ in range(5)],
    *[dnsmasq("2.78") for _ in range(3)],
    # 8 pi-hole
    *[pi_hole("2.81") for _ in range(5)],
    *[pi_hole("2.84") for _ in range(3)],
    # 4 unbound (plus 2 misclassified ISP probes showing unbound 1.9.0)
    unbound("1.9.0"),
    unbound("1.9.0", identity="routing.v2.pw"),
    unbound("1.13.1"),
    unbound("1.13.1"),
    # 2 BIND RedHat packages
    bind_redhat(),
    bind_redhat(),
    # the long tail, one each
    powerdns(),
    q9(),
    bind_vanilla("9.16.15"),
    bind_debian(),
    windows_ns(),
    microsoft(),
    quirky("new"),
    quirky("unknown"),
    quirky("none"),
    quirky("huuh?"),
)

_RESOLVER_KEYS = (
    "unbound-1.9.0",
    "unbound-1.13.1",
    "powerdns-4.1.11",
    "bind-redhat",
    "bind-9.16.15",
)


def _org_resolver_key(org: Organization) -> str:
    """Deterministic resolver software per organization."""
    return _RESOLVER_KEYS[org.asn % len(_RESOLVER_KEYS)]


def _provider_targets(provider: Provider, families=(4,)) -> list[str]:
    spec = PROVIDER_SPECS[provider]
    targets: list[str] = []
    if 4 in families:
        targets.extend(spec.v4_addresses)
    if 6 in families:
        targets.extend(spec.v6_addresses)
    return targets


@dataclass
class _Draft:
    """Mutable pre-spec while the generator assembles a probe."""

    organization: Organization
    firmware: FirmwareProfile = field(default_factory=honest_router)
    middlebox_policies: list[InterceptionPolicy] = field(default_factory=list)
    external_policies: list[InterceptionPolicy] = field(default_factory=list)
    force_ipv6: Optional[bool] = None
    note: str = ""
    resolver_key_override: Optional[str] = None
    nxdomain_wildcard_to: Optional[str] = None


class PopulationGenerator:
    """Builds the calibrated fleet. Deterministic under a fixed seed."""

    def __init__(self, config: Optional[PopulationConfig] = None) -> None:
        self.config = config or PopulationConfig()
        self.rng = random.Random(self.config.seed)

    # -- sampling helpers ---------------------------------------------------

    def _sample_org(self, by_interception: bool = False, xb6_bias: bool = False) -> Organization:
        if xb6_bias:
            pool = [o for o in ORGANIZATIONS if o.deploys_xb6]
            weights = [o.intercept_weight for o in pool]
            return self.rng.choices(pool, weights=weights, k=1)[0]
        weights = [
            o.intercept_weight if by_interception else o.probe_weight
            for o in ORGANIZATIONS
        ]
        return self.rng.choices(list(ORGANIZATIONS), weights=weights, k=1)[0]

    def _scale(self, count: int) -> int:
        if self.config.size >= 9800:
            return count
        scaled = count * self.config.size / 9800
        floor = int(scaled)
        return floor + (1 if self.rng.random() < scaled - floor else 0)

    def _isp_mode(self) -> InterceptMode:
        roll = self.rng.random()
        if roll < self.config.isp_block_share:
            return InterceptMode.BLOCK
        if roll < self.config.isp_block_share + self.config.isp_replicate_share:
            return InterceptMode.REPLICATE
        return InterceptMode.REDIRECT

    def _block_rcode(self) -> int:
        return self.rng.choice([RCode.REFUSED, RCode.NOTIMP, RCode.SERVFAIL])

    def _bogon_flag(self) -> bool:
        return self.rng.random() >= self.config.isp_bogon_blind_share

    # -- interceptor drafts ----------------------------------------------------

    def _draft_cpe_true(self) -> list[_Draft]:
        drafts = []
        for index in range(self._scale(self.config.cpe_true_count)):
            software = CPE_TRUE_SOFTWARE[index % len(CPE_TRUE_SOFTWARE)]
            is_rdkb = index < 15  # XB6/RDK-B units live in XB6-renting ISPs
            org = self._sample_org(xb6_bias=is_rdkb, by_interception=not is_rdkb)
            model = "XB6" if is_rdkb else (
                "pi-hole" if software.family.startswith("dnsmasq-pi-hole") else "cpe-dnat"
            )
            firmware = FirmwareProfile(
                model=model,
                software=software,
                intercepts_v4=True,
                notes="CPE DNAT interception",
            )
            drafts.append(_Draft(organization=org, firmware=firmware, note="cpe"))
        return drafts

    def _draft_cpe_misclassified(self) -> list[_Draft]:
        """§6 limitation: open WAN forwarder that relays version.bind,
        behind an all-four ISP redirect with an unbound-1.9.0 resolver."""
        drafts = []
        for _ in range(self._scale(self.config.cpe_misclassified_count)):
            org = self._sample_org(by_interception=True)
            firmware = FirmwareProfile(
                model="open-forwarder",
                software=silent_forwarder(),
                wan_port53_open=True,
                notes="forwards version.bind upstream",
            )
            draft = _Draft(
                organization=org,
                firmware=firmware,
                note="cpe-misclass",
                # Pin the resolver software: the string Step 2 (wrongly)
                # attributes to these CPEs is the resolver's, and the
                # paper's Table 5 shows it among the unbound entries.
                resolver_key_override="unbound-1.9.0",
            )
            draft.middlebox_policies.append(
                intercept_all(mode=InterceptMode.REDIRECT, intercept_bogons=True)
            )
            drafts.append(draft)
        return drafts

    def _draft_middlebox(self, policies: list[InterceptionPolicy], note: str) -> _Draft:
        org = self._sample_org(by_interception=True)
        draft = _Draft(organization=org, note=note)
        draft.middlebox_policies.extend(policies)
        return draft

    def _draft_isp(self) -> list[_Draft]:
        cfg = self.config
        drafts: list[_Draft] = []
        # all-four interceptors
        for _ in range(self._scale(cfg.isp_all_four)):
            mode = self._isp_mode()
            mixed = self.rng.random() < cfg.isp_mixed_share
            bogons = self._bogon_flag()
            if mixed:
                # BLOCK one popular provider, REDIRECT the rest -> "Both".
                blocked = self.rng.choice([Provider.GOOGLE, Provider.CLOUDFLARE])
                policies = [
                    InterceptionPolicy(
                        mode=InterceptMode.BLOCK,
                        families=frozenset({4}),
                        targets=frozenset(_provider_targets(blocked)),
                        block_rcode=self._block_rcode(),
                        intercept_bogons=False,
                    ),
                    intercept_all(mode=InterceptMode.REDIRECT, intercept_bogons=bogons),
                ]
            else:
                policies = [
                    intercept_all(
                        mode=mode,
                        intercept_bogons=bogons,
                        block_rcode=self._block_rcode(),
                    )
                ]
            drafts.append(self._draft_middlebox(policies, "isp-all"))
        # single-resolver interceptors
        for provider, count in zip(PROVIDERS, cfg.isp_single):
            for _ in range(self._scale(count)):
                policy = intercept_only(
                    _provider_targets(provider),
                    mode=self._isp_mode(),
                    intercept_bogons=self._bogon_flag(),
                )
                drafts.append(self._draft_middlebox([policy], "isp-single"))
        # allow-one interceptors
        for provider, count in zip(PROVIDERS, cfg.isp_allow_one):
            for _ in range(self._scale(count)):
                policy = allow_only(
                    _provider_targets(provider),
                    mode=InterceptMode.REDIRECT,
                    intercept_bogons=self._bogon_flag(),
                )
                drafts.append(self._draft_middlebox([policy], "isp-allow-one"))
        # the single pair interceptor (CF+Google)
        for _ in range(self._scale(cfg.isp_pair)):
            policy = intercept_only(
                _provider_targets(Provider.CLOUDFLARE)
                + _provider_targets(Provider.GOOGLE),
                mode=InterceptMode.REDIRECT,
                intercept_bogons=self._bogon_flag(),
            )
            drafts.append(self._draft_middlebox([policy], "isp-pair"))
        return drafts

    def _draft_external(self) -> list[_Draft]:
        cfg = self.config
        drafts: list[_Draft] = []

        def ext(policies: list[InterceptionPolicy], note: str) -> _Draft:
            org = self._sample_org(by_interception=True)
            draft = _Draft(organization=org, note=note)
            draft.external_policies.extend(policies)
            return draft

        for _ in range(self._scale(cfg.ext_all_four)):
            drafts.append(ext([intercept_all(mode=InterceptMode.REDIRECT)], "ext-all"))
        for provider, count in zip(PROVIDERS, cfg.ext_single):
            for _ in range(self._scale(count)):
                drafts.append(
                    ext(
                        [intercept_only(_provider_targets(provider))],
                        "ext-single",
                    )
                )
        for provider, count in zip(PROVIDERS, cfg.ext_allow_one):
            for _ in range(self._scale(count)):
                drafts.append(
                    ext([allow_only(_provider_targets(provider))], "ext-allow-one")
                )
        return drafts

    def _add_v6_interception(self, drafts: list[_Draft]) -> None:
        """Layer IPv6 policies onto a subset of ISP redirect interceptors."""
        cfg = self.config
        candidates = [
            d for d in drafts if d.middlebox_policies and d.note.startswith("isp")
        ]
        self.rng.shuffle(candidates)
        google_only = self._scale(cfg.v6_google_only)
        three = self._scale(cfg.v6_three_no_google)
        for draft in candidates[:google_only]:
            draft.force_ipv6 = True
            draft.middlebox_policies.append(
                intercept_only(
                    _provider_targets(Provider.GOOGLE, families=(6,)),
                    families=frozenset({6}),
                )
            )
        for draft in candidates[google_only : google_only + three]:
            draft.force_ipv6 = True
            targets = (
                _provider_targets(Provider.CLOUDFLARE, families=(6,))
                + _provider_targets(Provider.QUAD9, families=(6,))
                + _provider_targets(Provider.OPENDNS, families=(6,))
            )
            draft.middlebox_policies.append(
                intercept_only(targets, families=frozenset({6}))
            )

    # -- honest drafts -------------------------------------------------------------

    def _draft_honest(self, count: int) -> list[_Draft]:
        cfg = self.config
        drafts = []
        for _ in range(count):
            org = self._sample_org()
            roll = self.rng.random()
            if roll < cfg.honest_forwarder_share * cfg.honest_wan_open_share:
                firmware = open_wan_forwarder(
                    software=dnsmasq(self.rng.choice(["2.78", "2.80", "2.85"]))
                )
            elif roll < cfg.honest_forwarder_share:
                firmware = honest_forwarder(
                    software=dnsmasq(self.rng.choice(["2.78", "2.80", "2.85"]))
                )
            else:
                firmware = honest_router()
            drafts.append(_Draft(organization=org, firmware=firmware, note="honest"))
        return drafts

    # -- encrypted-DNS postures ----------------------------------------------------

    def _assign_encrypted_postures(self, drafts: "list[_Draft]") -> None:
        """Give every interceptor draft an encrypted-DNS personality.

        CPE postures follow the firmware model deterministically (an
        XB6 downgrades like its plaintext bug, a pi-hole blocklists the
        public-resolver SNIs, a plain DNAT box firewalls port 853);
        middlebox postures are sampled. The sampling uses its own
        :class:`random.Random` — consuming the generator's main stream
        here would reshuffle every downstream draw and silently change
        the plaintext fleet this generator is calibrated to produce.
        """
        import dataclasses

        cfg = self.config
        enc_rng = random.Random(cfg.seed * 48947 + 853)
        port_block = EncryptedDnsPolicy(
            dot=EncryptedAction.BLOCK, doq=EncryptedAction.BLOCK
        )
        for draft in drafts:
            if draft.note == "cpe":
                firmware = draft.firmware
                if firmware.model == "XB6":
                    posture = downgrade_all()
                elif firmware.model == "pi-hole":
                    posture = pihole_profile().encrypted_dns
                else:
                    posture = dnat_interceptor().encrypted_dns
                draft.firmware = dataclasses.replace(
                    firmware, encrypted_dns=posture
                )
                continue
            if not (draft.middlebox_policies or draft.external_policies):
                continue
            roll = enc_rng.random()
            if roll < cfg.middlebox_encrypted_block_share:
                posture = port_block
            elif roll < (
                cfg.middlebox_encrypted_block_share
                + cfg.middlebox_encrypted_downgrade_share
            ):
                posture = downgrade_all()
            else:
                continue  # no opinion: encrypted sessions pass through
            draft.middlebox_policies = [
                dataclasses.replace(policy, encrypted=posture)
                for policy in draft.middlebox_policies
            ]
            draft.external_policies = [
                dataclasses.replace(policy, encrypted=posture)
                for policy in draft.external_policies
            ]

    def _assign_nxdomain_wildcards(self, drafts: "list[_Draft]") -> None:
        """Give a share of ISP REDIRECT interceptors a monetising resolver.

        Sampled on a dedicated RNG stream (like the encrypted postures):
        the plaintext answers these resolvers give to *resolvable* names
        are untouched, so the calibrated heuristic fleet must stay
        byte-identical with the feature on or off.
        """
        cfg = self.config
        wc_rng = random.Random(cfg.seed * 74093 + 53)
        for draft in drafts:
            if not draft.note.startswith("isp"):
                continue
            if not any(
                p.mode is InterceptMode.REDIRECT and p.plaintext
                for p in draft.middlebox_policies
            ):
                continue
            if wc_rng.random() < cfg.isp_nxdomain_wildcard_share:
                draft.nxdomain_wildcard_to = cfg.nxdomain_wildcard_address

    def _convert_encrypted_only(self, drafts: "list[_Draft]") -> None:
        """Turn the first N honest drafts into encrypted-only interceptors.

        Runs *after* the fleet shuffle so the converted probes are spread
        pseudo-randomly through the fleet without consuming the main RNG
        stream (mutating a draft in place never touches ``self.rng``).
        The policy's ``plaintext=False`` keeps ``true_location()`` at
        NONE — ground truth agrees with the plaintext locator; only the
        certificate detector sees these boxes.
        """
        cfg = self.config
        count = cfg.encrypted_only_downgrade_count
        if cfg.size < 9800:
            scaled = count * cfg.size / 9800
            conv_rng = random.Random(cfg.seed * 104729 + 443)
            count = int(scaled) + (
                1 if conv_rng.random() < scaled - int(scaled) else 0
            )
        converted = 0
        for draft in drafts:
            if converted >= count:
                break
            if draft.note != "honest":
                continue
            draft.note = "isp-encrypted-downgrade"
            draft.middlebox_policies.append(
                InterceptionPolicy(
                    mode=InterceptMode.REDIRECT,
                    plaintext=False,
                    encrypted=downgrade_all(),
                    intercept_bogons=False,
                )
            )
            converted += 1

    # -- assembly ------------------------------------------------------------------

    def generate(self) -> list[ProbeSpec]:
        cfg = self.config
        drafts = (
            self._draft_cpe_true()
            + self._draft_cpe_misclassified()
            + self._draft_isp()
            + self._draft_external()
        )
        self._add_v6_interception(drafts)
        self._assign_encrypted_postures(drafts)
        self._assign_nxdomain_wildcards(drafts)
        honest_needed = max(0, cfg.size - len(drafts))
        drafts += self._draft_honest(honest_needed)
        self.rng.shuffle(drafts)
        self._convert_encrypted_only(drafts)

        specs: list[ProbeSpec] = []
        for index, draft in enumerate(drafts):
            probe_id = 10_000 + index
            has_ipv6 = (
                draft.force_ipv6
                if draft.force_ipv6 is not None
                else self.rng.random() < cfg.v6_share
            )
            online = self.rng.random() < cfg.availability
            responds_v4 = tuple(
                self.rng.random() < p for p in cfg.response_v4
            )
            responds_v6 = tuple(
                self.rng.random() < p for p in cfg.response_v6
            )
            specs.append(
                ProbeSpec(
                    probe_id=probe_id,
                    organization=draft.organization,
                    firmware=draft.firmware,
                    isp=IspBehavior(
                        resolver_software_key=(
                            draft.resolver_key_override
                            or _org_resolver_key(draft.organization)
                        ),
                        middlebox_policies=tuple(draft.middlebox_policies),
                        nxdomain_wildcard_to=draft.nxdomain_wildcard_to,
                    ),
                    external_policies=tuple(draft.external_policies),
                    has_ipv6=has_ipv6,
                    responds_v4=responds_v4,
                    responds_v6=responds_v6,
                    online=online,
                )
            )
        return specs


def generate_population(
    size: int = 9800, seed: int = 2021, config: Optional[PopulationConfig] = None
) -> list[ProbeSpec]:
    """Generate the calibrated fleet (convenience wrapper)."""
    if config is None:
        config = PopulationConfig(size=size, seed=seed)
    return PopulationGenerator(config).generate()


#: PopulationConfig field names, resolved once for the catalog loader.
_POPULATION_FIELDS: dict = {}


def population_config_from_dict(data: dict) -> PopulationConfig:
    """Build a :class:`PopulationConfig` from plain JSON data.

    The scenario catalog's ``population`` section maps straight onto the
    generator's knobs; unknown keys are rejected (a typo'd knob must not
    silently fall back to its default) and JSON lists are normalised to
    the tuples the frozen dataclass expects.
    """
    import dataclasses as _dataclasses

    if not _POPULATION_FIELDS:
        for f in _dataclasses.fields(PopulationConfig):
            _POPULATION_FIELDS[f.name] = f
    unknown = set(data) - set(_POPULATION_FIELDS)
    if unknown:
        raise ValueError(
            f"unknown population keys: {sorted(unknown)}; "
            f"known: {sorted(_POPULATION_FIELDS)}"
        )
    payload = {
        name: tuple(value) if isinstance(value, list) else value
        for name, value in data.items()
    }
    return PopulationConfig(**payload)


def example_probe_specs() -> dict[int, ProbeSpec]:
    """The three probes of the worked example in §3.4 (Tables 2-3).

    - **1053** — clean path; standard answers everywhere.
    - **11992** — ISP middlebox redirect; the alternate resolver hides its
      version (NOTIMP), and the probe's own CPE has port 53 open with
      software answering NXDOMAIN to ``version.bind``: a non-CPE verdict,
      resolved to "within ISP" by the bogon query.
    - **21823** — CPE DNAT interceptor running unbound 1.9.0 with
      ``identity: routing.v2.pw``; all three version.bind answers agree.
    """
    comcast = organization_by_name("Comcast")
    rostelecom = organization_by_name("Rostelecom")
    ziggo = organization_by_name("Ziggo")

    nxdomain_fw = ServerSoftware(
        label="(nxdomain)",
        family="(nxdomain)",
        version_bind=ChaosBehavior.nxdomain(),
        id_server=ChaosBehavior.nxdomain(),
        hostname_bind=ChaosBehavior.nxdomain(),
    )
    return {
        1053: ProbeSpec(
            probe_id=1053, organization=comcast, firmware=honest_router()
        ),
        11992: ProbeSpec(
            probe_id=11992,
            organization=rostelecom,
            firmware=FirmwareProfile(
                model="open-forwarder",
                software=nxdomain_fw,
                wan_port53_open=True,
            ),
            isp=IspBehavior(
                resolver_software_key="unbound-hidden",
                middlebox_policies=(
                    intercept_all(mode=InterceptMode.REDIRECT, intercept_bogons=True),
                ),
            ),
        ),
        21823: ProbeSpec(
            probe_id=21823,
            organization=ziggo,
            firmware=FirmwareProfile(
                model="cpe-dnat",
                software=unbound("1.9.0", identity="routing.v2.pw"),
                intercepts_v4=True,
            ),
        ),
    }
