"""The measurement client: DNS exchanges as a probe performs them.

This is the software equivalent of what RIPE Atlas exposes: send a DNS
query from the probe to an arbitrary destination and report what came
back. Like a real stub resolver, the client validates responses — the
claimed source must be the queried address, the port must match, and the
DNS message id must echo — which is exactly why interceptors *must*
spoof sources to stay transparent (§2).

Both transports (UDP port 53 and DNS-over-TLS port 853) return the same
shape: a :class:`DnsExchangeResult` / :class:`DotExchangeResult` sharing
the :class:`ExchangeResult` base (status, rcode, txt_answer, rtt_ms,
attempts), so callers and metrics hooks never special-case the
transport. Every exchange also reports into the network's metrics
registry (:mod:`repro.core.metrics`): queries sent, retransmissions,
rejected datagrams and per-transmission RTTs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.dnswire import DNS_PORT, Message, decode_or_none
from repro.net import Host, Network
from repro.net.addr import IPAddress, parse_ip
from repro.net.node import ReceivedDatagram, ReceivedIcmp
from repro.net.packet import DEFAULT_TTL

from .retry import FixedIntervalRetry, RetryPolicy

#: How long a probe waits for an answer (simulated milliseconds).
DEFAULT_TIMEOUT_MS = 5000.0


class ExchangeStatus(enum.Enum):
    """Terminal state of one exchange, transport-independent."""

    ANSWERED = "answered"
    TIMEOUT = "timeout"
    #: Strict-profile DoT only: bytes arrived but the authenticated
    #: server identity was wrong, so the client refused the session.
    IDENTITY_REJECTED = "identity-rejected"


@dataclass
class ExchangeResult:
    """Shared outcome shape for one query, whatever the transport.

    The unified surface is ``status`` / ``rcode`` / ``txt_answer()`` /
    ``rtt_ms`` / ``attempts``; transport-specific detail lives on the
    :class:`DnsExchangeResult` and :class:`DotExchangeResult`
    subclasses. ``timed_out`` is kept as a deprecated read-only alias of
    ``status is ExchangeStatus.TIMEOUT``.
    """

    query: Message
    destination: IPAddress
    transport: str = "udp"
    response: Optional[Message] = None
    rtt_ms: Optional[float] = None
    #: Transmissions performed (1 + retransmissions for UDP; always 1
    #: for DoT, which rides the session's reliability instead).
    attempts: int = 1
    status: ExchangeStatus = ExchangeStatus.TIMEOUT

    @property
    def answered(self) -> bool:
        return self.status is ExchangeStatus.ANSWERED

    @property
    def timed_out(self) -> bool:
        """Deprecated alias: prefer ``status is ExchangeStatus.TIMEOUT``."""
        return self.status is ExchangeStatus.TIMEOUT

    @property
    def rcode(self) -> Optional[int]:
        return None if self.response is None else self.response.rcode

    def txt_answer(self) -> Optional[str]:
        """First TXT string of the response, the location-query view."""
        if self.response is None:
            return None
        strings = self.response.txt_strings()
        return strings[0] if strings else None


@dataclass
class DnsExchangeResult(ExchangeResult):
    """UDP exchange outcome: the shared shape plus datagram forensics."""

    #: Every response accepted by validation, in arrival order. More than
    #: one element means *query replication* (Liu et al. [31]): an
    #: interceptor answered and the genuine response also arrived.
    accepted: list[Message] = field(default_factory=list)
    #: Datagrams rejected by source/id validation (would-be off-path junk).
    rejected: list[ReceivedDatagram] = field(default_factory=list)
    #: ICMP errors attributable to this query (for TTL probing).
    icmp: list[ReceivedIcmp] = field(default_factory=list)

    @property
    def replicated(self) -> bool:
        """True when validation accepted two *distinct* responses.

        Byte-identical extras are link-level duplication, not query
        replication: an interceptor's injected answer always differs
        from the genuine one (different payload), while an impaired
        link's duplicate is the same message delivered twice.
        """
        if len(self.accepted) < 2:
            return False
        first = self.accepted[0]
        return any(message != first for message in self.accepted[1:])


@dataclass
class DotExchangeResult(ExchangeResult):
    """DNS-over-TLS exchange outcome: the shared shape plus identity.

    ``strict`` clients (the RFC 7858 strict privacy profile) reject any
    session whose authenticated identity differs from the one they
    dialed; ``response`` is then None even though bytes arrived —
    ``status`` is ``IDENTITY_REJECTED`` (the deprecated
    ``identity_rejected`` alias mirrors it).
    """

    expected_identity: str = ""
    strict: bool = True
    observed_identity: Optional[str] = None

    @property
    def identity_rejected(self) -> bool:
        """Deprecated alias: prefer ``status``."""
        return self.status is ExchangeStatus.IDENTITY_REJECTED

    @property
    def identity_ok(self) -> Optional[bool]:
        if self.observed_identity is None:
            return None
        return self.observed_identity == self.expected_identity


def _record_exchange(network: Network, result: ExchangeResult) -> None:
    """Shared metrics hook — identical for every transport."""
    metrics = network.metrics
    if not metrics.enabled:
        return
    transport = result.transport
    metrics.inc(f"exchange.queries.{transport}")
    if result.attempts > 1:
        metrics.inc("exchange.retransmissions", result.attempts - 1)
    if result.status is ExchangeStatus.TIMEOUT:
        metrics.inc(f"exchange.timeouts.{transport}")
    elif result.status is ExchangeStatus.IDENTITY_REJECTED:
        metrics.inc("exchange.identity_rejected")
    if result.rtt_ms is not None:
        metrics.observe_ms(f"exchange.rtt_ms.{transport}", result.rtt_ms)
    if metrics.exchange_events:
        metrics.event(
            "exchange",
            transport=transport,
            destination=str(result.destination),
            status=result.status.value,
            attempts=result.attempts,
            rtt_ms=result.rtt_ms,
        )


def dns_exchange(
    network: Network,
    host: Host,
    destination: "str | IPAddress",
    query: Message,
    timeout_ms: float = DEFAULT_TIMEOUT_MS,
    ttl: int = DEFAULT_TTL,
    retries: int = 0,
    retry_interval_ms: float = 1000.0,
    retry_policy: Optional[RetryPolicy] = None,
) -> DnsExchangeResult:
    """Send ``query`` to ``destination`` and collect the outcome.

    Runs the simulated network forward until the timeout. All datagrams
    arriving at the ephemeral port are validated: claimed source must be
    ``destination`` and the message id must match. ICMP errors quoting
    this probe's packets are gathered for TTL analysis.

    Retransmissions (same message id, same socket) are governed by
    ``retry_policy`` — any :class:`~repro.atlas.retry.RetryPolicy`, e.g.
    exponential backoff with jitter for chaos studies. The legacy
    ``retries`` / ``retry_interval_ms`` pair builds the equivalent
    :class:`~repro.atlas.retry.FixedIntervalRetry` and remains the
    default spelling. Whatever the policy, the overall ``timeout_ms``
    budget covers all attempts and no retransmission is sent at or past
    the deadline.
    """
    if retry_policy is None:
        retry_policy = FixedIntervalRetry(retries=retries, interval_ms=retry_interval_ms)
    delays = retry_policy.delays_ms(query.msg_id)
    destination = parse_ip(destination)
    result = DnsExchangeResult(query=query, destination=destination)
    sock = host.open_socket()
    icmp_mark = len(host.icmp_inbox)

    send_times: list[float] = []

    def classify(datagrams: "list[ReceivedDatagram]") -> None:
        for datagram in datagrams:
            message = decode_or_none(datagram.payload)
            if (
                message is None
                or not message.is_response
                or message.msg_id != query.msg_id
                or datagram.src != destination
                or datagram.sport != DNS_PORT
            ):
                result.rejected.append(datagram)
                continue
            result.accepted.append(message)
            if result.response is None:
                result.response = message
                # RTT against the transmission this answer responds to:
                # the most recent send at or before its arrival, not the
                # first one — an answer to the Nth retransmission must
                # not be inflated by N retry intervals.
                earlier = [t for t in send_times if t <= datagram.time]
                sent_at = earlier[-1] if earlier else send_times[0]
                result.rtt_ms = datagram.time - sent_at
                result.status = ExchangeStatus.ANSWERED

    try:
        send_times.append(network.now)
        sock.sendto(query.encode(), destination, DNS_PORT, ttl=ttl)
        deadline = send_times[0] + timeout_ms
        retry_index = 0
        next_retry = send_times[0] + delays[0] if delays else deadline
        while True:
            pending = retry_index < len(delays)
            # A retransmission scheduled at or past the deadline never
            # goes out: the horizon min() stops the clock at the
            # deadline first and the loop exits on the budget check.
            horizon = min(deadline, next_retry) if pending else deadline
            network.run(until=horizon)
            # Validate what arrived *before* deciding whether to keep
            # retrying: a rejected datagram (wrong source/port/id — the
            # off-path junk validation exists to discard) must not
            # cancel the remaining retransmissions.
            classify(sock.drain())
            if result.accepted:
                break
            if network.now >= deadline or not pending:
                break
            send_times.append(network.now)
            sock.sendto(query.encode(), destination, DNS_PORT, ttl=ttl)
            retry_index += 1
            if retry_index < len(delays):
                next_retry = network.now + delays[retry_index]
        result.attempts = len(send_times)
        result.icmp = [
            icmp
            for icmp in host.icmp_inbox[icmp_mark:]
            if icmp.quoted is not None
            and icmp.quoted.udp is not None
            and icmp.quoted.udp.sport == sock.port
        ]
    finally:
        sock.close()
    if result.rejected and network.metrics.enabled:
        network.metrics.inc("exchange.rejected_datagrams", len(result.rejected))
    if result.replicated:
        network.metrics.inc("exchange.replicated")
    _record_exchange(network, result)
    return result


def dot_exchange(
    network: Network,
    host: Host,
    destination: "str | IPAddress",
    query: Message,
    expected_identity: str,
    strict: bool = True,
    timeout_ms: float = DEFAULT_TIMEOUT_MS,
) -> DotExchangeResult:
    """Send ``query`` over (abstracted) DNS-over-TLS to port 853.

    The strict profile validates the server identity against
    ``expected_identity``; the opportunistic profile accepts any
    identity — which is precisely why it remains interceptable (§6).
    """
    from repro.net.dot import DOT_PORT, unwrap_dot, wrap_dot

    destination = parse_ip(destination)
    result = DotExchangeResult(
        query=query,
        destination=destination,
        transport="dot",
        expected_identity=expected_identity,
        strict=strict,
    )
    sock = host.open_socket()
    rejected_session = False
    try:
        sent_at = network.now
        # The client->server frame carries no server identity (that is
        # established by the server's certificate on the way back).
        sock.sendto(wrap_dot(query.encode(), ""), destination, DOT_PORT)
        network.run(until=sent_at + timeout_ms)
        for datagram in sock.drain():
            if datagram.src != destination or datagram.sport != DOT_PORT:
                continue
            frame = unwrap_dot(datagram.payload)
            if frame is None:
                continue
            message = decode_or_none(frame.dns_payload)
            if message is None or message.msg_id != query.msg_id:
                continue
            result.observed_identity = frame.server_identity
            if strict and frame.server_identity != expected_identity:
                rejected_session = True
                continue
            if result.response is None:
                result.response = message
                result.rtt_ms = datagram.time - sent_at
    finally:
        sock.close()
    # A rejected session dominates: a strict client that refused the
    # interceptor's certificate reports the hijack attempt even if the
    # genuine answer also slipped through.
    if rejected_session:
        result.status = ExchangeStatus.IDENTITY_REJECTED
    elif result.response is not None:
        result.status = ExchangeStatus.ANSWERED
    _record_exchange(network, result)
    return result


@dataclass
class MeasurementClient:
    """Convenience wrapper binding a network and a probe host.

    ``retry_policy`` applies stub-style retransmission to every
    exchange — set it when measuring over lossy or impaired paths. The
    legacy ``retries`` / ``retry_interval_ms`` pair still works and
    builds a fixed-interval policy.
    """

    network: Network
    host: Host
    timeout_ms: float = DEFAULT_TIMEOUT_MS
    retries: int = 0
    retry_interval_ms: float = 1000.0
    retry_policy: Optional[RetryPolicy] = None

    def exchange(
        self,
        destination: "str | IPAddress",
        query: Message,
        ttl: int = DEFAULT_TTL,
        timeout_ms: Optional[float] = None,
    ) -> DnsExchangeResult:
        return dns_exchange(
            self.network,
            self.host,
            destination,
            query,
            timeout_ms=timeout_ms if timeout_ms is not None else self.timeout_ms,
            ttl=ttl,
            retries=self.retries,
            retry_interval_ms=self.retry_interval_ms,
            retry_policy=self.retry_policy,
        )

    def can_reach_family(self, family: int) -> bool:
        return self.host.address_for_family(family) is not None

    def dot(
        self,
        destination: "str | IPAddress",
        query: Message,
        expected_identity: str,
        strict: bool = True,
        timeout_ms: Optional[float] = None,
    ) -> DotExchangeResult:
        return dot_exchange(
            self.network,
            self.host,
            destination,
            query,
            expected_identity,
            strict=strict,
            timeout_ms=timeout_ms if timeout_ms is not None else self.timeout_ms,
        )
