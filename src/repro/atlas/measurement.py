"""The measurement client: DNS exchanges as a probe performs them.

This is the software equivalent of what RIPE Atlas exposes: send a DNS
query from the probe to an arbitrary destination and report what came
back. Like a real stub resolver, the client validates responses — the
claimed source must be the queried address, the port must match, and the
DNS message id must echo — which is exactly why interceptors *must*
spoof sources to stay transparent (§2).

Every transport returns the same shape: a subclass of
:class:`ExchangeResult` (status, rcode, txt_answer, rtt_ms, attempts),
so callers and metrics hooks never special-case the transport. The
transport implementations live in the :mod:`repro.atlas.transport`
registry; this module owns the result shapes, the metrics hook, the
:class:`MeasurementClient`, and the deprecated ``dns_exchange`` /
``dot_exchange`` wrappers around the registry.
"""

from __future__ import annotations

import enum
import warnings
from dataclasses import dataclass, field
from typing import Optional

from repro.dnswire import Message
from repro.net import Host, Network
from repro.net.addr import IPAddress
from repro.net.node import ReceivedDatagram, ReceivedIcmp
from repro.net.packet import DEFAULT_TTL

from .retry import FixedIntervalRetry, RetryPolicy

#: How long a probe waits for an answer (simulated milliseconds).
DEFAULT_TIMEOUT_MS = 5000.0


class ExchangeStatus(enum.Enum):
    """Terminal state of one exchange, transport-independent."""

    ANSWERED = "answered"
    TIMEOUT = "timeout"
    #: Strict-profile encrypted transports only: bytes arrived but the
    #: authenticated server identity was wrong, so the client refused
    #: the session.
    IDENTITY_REJECTED = "identity-rejected"
    #: A validated response arrived with the TC bit set and no complete
    #: answer followed. The probe has no TCP fallback, so the answer
    #: content is unusable — scoring a truncated section as if it were
    #: the full response would misclassify. Classifier steps treat this
    #: like an exhausted measurement and degrade to INCONCLUSIVE.
    TRUNCATED = "truncated"


@dataclass
class ExchangeResult:
    """Shared outcome shape for one query, whatever the transport.

    The unified surface is ``status`` / ``rcode`` / ``txt_answer()`` /
    ``rtt_ms`` / ``attempts``; transport-specific detail lives on the
    :class:`DnsExchangeResult` and :class:`EncryptedExchangeResult`
    subclasses. ``timed_out`` is kept as a deprecated read-only alias of
    ``status is ExchangeStatus.TIMEOUT``.
    """

    query: Message
    destination: IPAddress
    transport: str = "udp"
    response: Optional[Message] = None
    rtt_ms: Optional[float] = None
    #: Transmissions performed (1 + retransmissions for UDP; always 1
    #: for encrypted transports, which ride the session's reliability).
    attempts: int = 1
    status: ExchangeStatus = ExchangeStatus.TIMEOUT

    @property
    def answered(self) -> bool:
        return self.status is ExchangeStatus.ANSWERED

    @property
    def timed_out(self) -> bool:
        """Deprecated alias: prefer ``status is ExchangeStatus.TIMEOUT``."""
        return self.status is ExchangeStatus.TIMEOUT

    @property
    def rcode(self) -> Optional[int]:
        return None if self.response is None else self.response.rcode

    def txt_answer(self) -> Optional[str]:
        """First TXT string of the response, the location-query view."""
        if self.response is None:
            return None
        strings = self.response.txt_strings()
        return strings[0] if strings else None


@dataclass
class DnsExchangeResult(ExchangeResult):
    """UDP exchange outcome: the shared shape plus datagram forensics."""

    #: Every response accepted by validation, in arrival order. More than
    #: one element means *query replication* (Liu et al. [31]): an
    #: interceptor answered and the genuine response also arrived.
    accepted: list[Message] = field(default_factory=list)
    #: Datagrams rejected by source/id validation (would-be off-path junk).
    rejected: list[ReceivedDatagram] = field(default_factory=list)
    #: Validated responses that arrived with the TC bit set. These pass
    #: source/port/id validation but are *not* complete answers — their
    #: sections may be cut anywhere — so they never populate ``response``
    #: or ``accepted``; with no complete answer the exchange ends
    #: ``TRUNCATED`` instead of ``ANSWERED``.
    truncated: list[Message] = field(default_factory=list)
    #: ICMP errors attributable to this query (for TTL probing).
    icmp: list[ReceivedIcmp] = field(default_factory=list)

    @property
    def replicated(self) -> bool:
        """True when validation accepted two *distinct* responses.

        Byte-identical extras are link-level duplication, not query
        replication: an interceptor's injected answer always differs
        from the genuine one (different payload), while an impaired
        link's duplicate is the same message delivered twice.
        """
        if len(self.accepted) < 2:
            return False
        first = self.accepted[0]
        return any(message != first for message in self.accepted[1:])


@dataclass
class EncryptedExchangeResult(ExchangeResult):
    """Encrypted-session exchange outcome: the shared shape plus identity.

    Common to DoT, DoH and DoQ. ``strict`` clients (the RFC 7858 strict
    privacy profile and its DoH/DoQ analogues) reject any session whose
    authenticated identity differs from the one they dialed;
    ``response`` is then None even though bytes arrived — ``status`` is
    ``IDENTITY_REJECTED`` (the deprecated ``identity_rejected`` alias
    mirrors it).
    """

    expected_identity: str = ""
    strict: bool = True
    observed_identity: Optional[str] = None

    @property
    def identity_rejected(self) -> bool:
        """Deprecated alias: prefer ``status``."""
        return self.status is ExchangeStatus.IDENTITY_REJECTED

    @property
    def identity_ok(self) -> Optional[bool]:
        if self.observed_identity is None:
            return None
        return self.observed_identity == self.expected_identity


@dataclass
class DotExchangeResult(EncryptedExchangeResult):
    """DNS-over-TLS exchange outcome (the common encrypted shape)."""


@dataclass
class DohExchangeResult(EncryptedExchangeResult):
    """DNS-over-HTTPS exchange outcome: encrypted shape plus HTTP detail."""

    #: RFC 8484 wire shape used for the request ("GET" or "POST").
    method: str = "POST"
    #: HTTP status of the last response frame seen, if any arrived.
    http_status: Optional[int] = None


@dataclass
class DoqExchangeResult(EncryptedExchangeResult):
    """DNS-over-QUIC exchange outcome: encrypted shape plus stream id."""

    #: QUIC stream the query ran on (always 0: fresh connection per query).
    stream_id: int = 0


def _record_exchange(network: Network, result: ExchangeResult) -> None:
    """Shared metrics hook — identical for every transport."""
    metrics = network.metrics
    if not metrics.enabled:
        return
    transport = result.transport
    metrics.inc(f"exchange.queries.{transport}")
    if result.attempts > 1:
        metrics.inc("exchange.retransmissions", result.attempts - 1)
    if result.status is ExchangeStatus.TIMEOUT:
        metrics.inc(f"exchange.timeouts.{transport}")
    elif result.status is ExchangeStatus.IDENTITY_REJECTED:
        metrics.inc("exchange.identity_rejected")
    elif result.status is ExchangeStatus.TRUNCATED:
        metrics.inc(f"exchange.truncated.{transport}")
    if result.rtt_ms is not None:
        metrics.observe_ms(f"exchange.rtt_ms.{transport}", result.rtt_ms)
    if metrics.exchange_events:
        metrics.event(
            "exchange",
            transport=transport,
            destination=str(result.destination),
            status=result.status.value,
            attempts=result.attempts,
            rtt_ms=result.rtt_ms,
        )


def dns_exchange(
    network: Network,
    host: Host,
    destination: "str | IPAddress",
    query: Message,
    timeout_ms: float = DEFAULT_TIMEOUT_MS,
    ttl: int = DEFAULT_TTL,
    retries: int = 0,
    retry_interval_ms: float = 1000.0,
    retry_policy: Optional[RetryPolicy] = None,
) -> DnsExchangeResult:
    """Deprecated: use :func:`repro.atlas.transport.resolve` (or
    :func:`repro.atlas.transport.udp53_exchange`) instead."""
    warnings.warn(
        "dns_exchange() is deprecated; use repro.atlas.transport.resolve("
        "client, query, destination, transport='udp53') instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from .transport import udp53_exchange

    if retry_policy is None:
        retry_policy = FixedIntervalRetry(retries=retries, interval_ms=retry_interval_ms)
    return udp53_exchange(
        network,
        host,
        destination,
        query,
        timeout_ms=timeout_ms,
        ttl=ttl,
        retry=retry_policy,
    )


def dot_exchange(
    network: Network,
    host: Host,
    destination: "str | IPAddress",
    query: Message,
    expected_identity: str,
    strict: bool = True,
    timeout_ms: float = DEFAULT_TIMEOUT_MS,
) -> DotExchangeResult:
    """Deprecated: use :func:`repro.atlas.transport.resolve` (or
    :func:`repro.atlas.transport.dot_exchange`) instead."""
    warnings.warn(
        "dot_exchange() is deprecated; use repro.atlas.transport.resolve("
        "client, query, destination, transport='dot') instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from .transport import dot_exchange as modern_dot_exchange

    return modern_dot_exchange(
        network,
        host,
        destination,
        query,
        expected_identity=expected_identity,
        strict=strict,
        timeout_ms=timeout_ms,
    )


@dataclass
class MeasurementClient:
    """Convenience wrapper binding a network and a probe host.

    ``retry_policy`` applies stub-style retransmission to every UDP
    exchange — set it when measuring over lossy or impaired paths. The
    legacy ``retries`` / ``retry_interval_ms`` pair still works and
    builds a fixed-interval policy.
    """

    network: Network
    host: Host
    timeout_ms: float = DEFAULT_TIMEOUT_MS
    retries: int = 0
    retry_interval_ms: float = 1000.0
    retry_policy: Optional[RetryPolicy] = None

    def effective_retry_policy(self) -> Optional[RetryPolicy]:
        """The retry policy ``resolve()`` applies by default."""
        if self.retry_policy is not None:
            return self.retry_policy
        if self.retries:
            return FixedIntervalRetry(
                retries=self.retries, interval_ms=self.retry_interval_ms
            )
        return None

    def resolve(
        self,
        query: Message,
        destination: "str | IPAddress",
        transport: str = "udp53",
        **options,
    ) -> ExchangeResult:
        """Resolve over any registered transport — the unified surface.

        Delegates to :func:`repro.atlas.transport.resolve`; see there
        for the per-transport options (``retry``, ``expected_identity``,
        ``strict``, ``method``, ``ttl``, ``timeout_ms``).
        """
        from .transport import resolve

        return resolve(self, query, destination, transport, **options)

    def exchange(
        self,
        destination: "str | IPAddress",
        query: Message,
        ttl: int = DEFAULT_TTL,
        timeout_ms: Optional[float] = None,
    ) -> DnsExchangeResult:
        from .transport import udp53_exchange

        return udp53_exchange(
            self.network,
            self.host,
            destination,
            query,
            timeout_ms=timeout_ms if timeout_ms is not None else self.timeout_ms,
            ttl=ttl,
            retry=self.effective_retry_policy(),
        )

    def can_reach_family(self, family: int) -> bool:
        return self.host.address_for_family(family) is not None

    def dot(
        self,
        destination: "str | IPAddress",
        query: Message,
        expected_identity: str,
        strict: bool = True,
        timeout_ms: Optional[float] = None,
    ) -> DotExchangeResult:
        from .transport import dot_exchange as modern_dot_exchange

        return modern_dot_exchange(
            self.network,
            self.host,
            destination,
            query,
            expected_identity=expected_identity,
            strict=strict,
            timeout_ms=timeout_ms if timeout_ms is not None else self.timeout_ms,
        )
