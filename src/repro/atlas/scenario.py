"""Scenario construction: a complete simulated Internet for one probe.

Each probe measurement runs against its own small network::

    host -- CPE -- access -- [middlebox] -- border -- [external] -- core
                                              |                      |
                                        ISP resolver        4 public resolvers
                                                             (+ off-AS resolver)

The border and core routers drop bogon-destined packets (they have no
route to that space and transit networks filter it), which is the
physical fact Step 3 of the methodology exploits.
"""

from __future__ import annotations

import ipaddress
import warnings
from dataclasses import dataclass, field
from typing import Optional

from repro.cpe.device import CpeDevice
from repro.cpe.forwarder import ForwarderEngine
from repro.interceptors.middlebox import ExternalInterceptor, MiddleboxRouter
from repro.interceptors.policy import InterceptionPolicy
from repro.net import Host, LinkProfile, Network, Router
from repro.net.addr import IPAddress
from repro.resolvers import (
    NameDirectory,
    Provider,
    PublicResolverNode,
    RecursiveResolverNode,
    build_default_directory,
)
from repro.resolvers.software import (
    ServerSoftware,
    bind_redhat,
    bind_vanilla,
    powerdns,
    unbound,
    unbound_hidden,
)

from .geo import as_identity
from .probe import ProbeSpec

#: Transit-network prefix hosting the external interceptor and the
#: off-AS resolver it redirects to.
TRANSIT_V4_PREFIX = ipaddress.ip_network("64.86.0.0/16")
TRANSIT_V6_PREFIX = ipaddress.ip_network("2001:5a0::/32")
#: Prefix for ISP resolvers hosted *outside* the client AS (§6 limitation).
HOSTED_DNS_V4_PREFIX = ipaddress.ip_network("185.228.0.0/16")
HOSTED_DNS_V6_PREFIX = ipaddress.ip_network("2a0d:2a00::/32")

_RESOLVER_SOFTWARE_FACTORIES = {
    "unbound-1.9.0": lambda: unbound("1.9.0"),
    "unbound-1.13.1": lambda: unbound("1.13.1"),
    "unbound-hidden": unbound_hidden,
    "unbound-routing": lambda: unbound("1.9.0", identity="routing.v2.pw"),
    "powerdns-4.1.11": powerdns,
    "bind-redhat": bind_redhat,
    "bind-9.16.15": lambda: bind_vanilla("9.16.15"),
}


def resolver_software(key: str) -> ServerSoftware:
    """Instantiate ISP resolver software from its registry key."""
    try:
        return _RESOLVER_SOFTWARE_FACTORIES[key]()
    except KeyError:
        raise KeyError(
            f"unknown resolver software {key!r}; "
            f"known: {sorted(_RESOLVER_SOFTWARE_FACTORIES)}"
        ) from None


@dataclass(frozen=True)
class ScenarioSpec:
    """Declarative description of one probe's simulated world.

    The probe's :class:`~repro.atlas.probe.ProbeSpec` stays the source
    of truth for who the probe is; ``ScenarioSpec`` layers the *run*
    choices on top — which resolvers exist, which interception policies
    apply, what the links do to packets — so chaos trials and
    :class:`~repro.core.study.StudyConfig` share one surface.

    ``providers``
        The public resolvers present in the scenario (``None`` = all
        four). Absent providers' addresses are unrouted, so their
        measurements time out — the "resolver set" knob.
    ``isp_policies`` / ``external_policies``
        Interception-policy overrides. ``None`` inherits the probe
        spec's policies; an empty tuple forces the device out entirely.
    ``impairment`` / ``impairment_seed``
        A :class:`~repro.net.impairment.LinkProfile` applied
        network-wide. The network's RNG streams are seeded from
        ``(impairment_seed, probe_id)``, so every probe is still a pure
        function of its spec for any worker count, while distinct
        chaos trials (distinct seeds) draw distinct fault schedules.
    """

    probe: ProbeSpec
    providers: Optional[tuple[Provider, ...]] = None
    isp_policies: Optional[tuple[InterceptionPolicy, ...]] = None
    external_policies: Optional[tuple[InterceptionPolicy, ...]] = None
    impairment: Optional[LinkProfile] = None
    impairment_seed: int = 0
    trace: bool = False
    #: ``"fast"`` runs the calendar-queue scheduler and enables the
    #: resolver answer-template caches; ``"reference"`` is the plain
    #: heap-scheduler path with every cache off. Both produce
    #: byte-identical records/metrics — the reference engine exists so
    #: equivalence is testable and regressions bisectable.
    engine: str = "fast"

    def __post_init__(self) -> None:
        if not isinstance(self.probe, ProbeSpec):
            raise TypeError(
                f"probe must be a ProbeSpec, got {type(self.probe).__name__}"
            )
        if self.impairment is not None and not isinstance(
            self.impairment, LinkProfile
        ):
            raise TypeError(
                f"impairment must be a LinkProfile, "
                f"got {type(self.impairment).__name__}"
            )
        if self.engine not in ("fast", "reference"):
            raise ValueError(
                f'engine must be "fast" or "reference", got {self.engine!r}'
            )

    def effective_providers(self) -> tuple[Provider, ...]:
        return tuple(Provider) if self.providers is None else self.providers

    def effective_isp_policies(self) -> tuple[InterceptionPolicy, ...]:
        if self.isp_policies is None:
            return self.probe.isp.middlebox_policies
        return self.isp_policies

    def effective_external_policies(self) -> tuple[InterceptionPolicy, ...]:
        if self.external_policies is None:
            return self.probe.external_policies
        return self.external_policies


@dataclass
class Scenario:
    """A built probe network plus the handles measurements need."""

    spec: ProbeSpec
    network: Network
    host: Host
    cpe: CpeDevice
    directory: NameDirectory
    isp_resolver: RecursiveResolverNode
    providers: dict[Provider, PublicResolverNode]
    middlebox: Optional[MiddleboxRouter] = None
    external: Optional[ExternalInterceptor] = None
    notes: dict[str, str] = field(default_factory=dict)
    #: The declarative spec this scenario was built from.
    scenario_spec: Optional[ScenarioSpec] = None

    @property
    def cpe_public_v4(self) -> IPAddress:
        return self.cpe.wan_v4

    @property
    def cpe_public_v6(self) -> Optional[IPAddress]:
        return self.cpe.wan_v6


def _home_addresses(spec: ProbeSpec):
    """Deterministic per-probe addressing derived from the organization."""
    org = spec.organization
    v4_net = ipaddress.ip_network(org.v4_prefix)
    wan_v4 = v4_net.network_address + 1024 + (spec.probe_id % 60000)
    v6_net = ipaddress.ip_network(org.v6_prefix)
    home_v6 = ipaddress.ip_network(
        (int(v6_net.network_address) + ((1024 + spec.probe_id) << 64), 64)
    )
    return v4_net, wan_v4, v6_net, home_v6


#: Sentinel distinguishing "not passed" from False in the deprecated
#: ``build_scenario(trace=...)`` kwarg shim.
_UNSET: object = object()


def build_scenario(
    spec: "ProbeSpec | ScenarioSpec",
    directory: Optional[NameDirectory] = None,
    trace=_UNSET,
) -> Scenario:
    """Build the full network for one probe.

    ``spec`` is a :class:`ScenarioSpec`; a bare
    :class:`~repro.atlas.probe.ProbeSpec` is accepted as shorthand for
    ``ScenarioSpec(probe=spec)`` (the overwhelmingly common call). The
    ``trace`` kwarg is deprecated — set it on the :class:`ScenarioSpec`.
    """
    if isinstance(spec, ScenarioSpec):
        if trace is not _UNSET:
            raise TypeError(
                "build_scenario() got both a ScenarioSpec and trace=; "
                "set trace on the ScenarioSpec"
            )
        sspec = spec
    else:
        if trace is not _UNSET:
            warnings.warn(
                "build_scenario(trace=...) is deprecated; pass "
                "ScenarioSpec(probe=..., trace=...)",
                DeprecationWarning,
                stacklevel=2,
            )
        sspec = ScenarioSpec(
            probe=spec, trace=False if trace is _UNSET else bool(trace)
        )
    spec = sspec.probe
    org = spec.organization
    directory = directory or build_default_directory()
    net = Network(
        trace=sspec.trace,
        loss_seed=f"impair:{sspec.impairment_seed}:{spec.probe_id}",
        impairment=sspec.impairment,
        scheduler="calendar" if sspec.engine == "fast" else "heap",
    )

    v4_net, wan_v4, v6_net, home_v6 = _home_addresses(spec)
    isp_base_v4 = v4_net.network_address
    isp_base_v6 = v6_net.network_address

    # -- ISP resolver placement -------------------------------------------
    inside_as = not spec.isp.resolver_outside_as
    if inside_as:
        resolver_v4 = isp_base_v4 + 53
        resolver_v6 = isp_base_v6 + 0x53
    else:
        resolver_v4 = HOSTED_DNS_V4_PREFIX.network_address + 53
        resolver_v6 = HOSTED_DNS_V6_PREFIX.network_address + 0x53
    isp_resolver = RecursiveResolverNode(
        "isp-resolver",
        addresses=[resolver_v4, resolver_v6],
        directory=directory,
        software=resolver_software(spec.isp.resolver_software_key),
        asn=org.asn if inside_as else None,
        # Operator-derived certificate identity: an in-AS resolver
        # presents its ISP's per-AS name, a hosted one the generic one.
        tls_identity=as_identity(
            org.asn if inside_as else None, "dot.isp-resolver"
        ),
        nxdomain_wildcard_to=spec.isp.nxdomain_wildcard_to,
    )

    # -- home -----------------------------------------------------------------
    host = Host(
        "host",
        addresses=["192.168.1.100"]
        + ([home_v6.network_address + 0x100] if spec.has_ipv6 else []),
        gateway="cpe",
        asn=org.asn,
    )
    forwarder = None
    if spec.firmware.software is not None:
        forwarder = ForwarderEngine(
            software=spec.firmware.software,
            upstream_v4=resolver_v4,
            upstream_v6=resolver_v6,
        )
    cpe = CpeDevice(
        "cpe",
        lan_v4_prefix="192.168.1.0/24",
        wan_v4=wan_v4,
        wan_gateway="access",
        lan_host="host",
        wan_v6=(home_v6.network_address + 1) if spec.has_ipv6 else None,
        lan_v6_prefix=home_v6 if spec.has_ipv6 else None,
        forwarder=forwarder,
        wan_port53_open=spec.firmware.wan_port53_open,
        model=spec.firmware.model,
        asn=org.asn,
        encrypted_dns=spec.firmware.encrypted_dns,
    )
    if spec.firmware.intercepts_v4:
        cpe.enable_interception(family=4)
    if spec.firmware.intercepts_v6 and spec.has_ipv6:
        cpe.enable_interception(family=6)

    # -- ISP fabric ---------------------------------------------------------------
    access = Router("access", addresses=[isp_base_v4 + 2], asn=org.asn)
    border = Router(
        "border",
        addresses=[isp_base_v4 + 4, isp_base_v6 + 4],
        asn=org.asn,
        drop_bogons=True,
    )
    isp_policies = sspec.effective_isp_policies()
    middlebox: Optional[MiddleboxRouter] = None
    if isp_policies:
        middlebox = MiddleboxRouter(
            "middlebox",
            policies=isp_policies,
            alternate_resolver_v4=resolver_v4,
            alternate_resolver_v6=resolver_v6,
            addresses=[isp_base_v4 + 3],
            asn=org.asn,
        )

    # -- beyond the AS -----------------------------------------------------------
    core = Router(
        "core",
        addresses=["198.32.0.1", "2001:500:a8::1"],
        drop_bogons=True,
    )
    external_policies = sspec.effective_external_policies()
    external: Optional[ExternalInterceptor] = None
    off_as_resolver: Optional[RecursiveResolverNode] = None
    if external_policies:
        off_v4 = TRANSIT_V4_PREFIX.network_address + 0x153
        off_v6 = TRANSIT_V6_PREFIX.network_address + 0x153
        off_as_resolver = RecursiveResolverNode(
            "offas-resolver",
            addresses=[off_v4, off_v6],
            directory=directory,
            software=unbound("1.13.1", identity="open-resolver.example"),
        )
        external = ExternalInterceptor(
            "external",
            policies=external_policies,
            alternate_resolver_v4=off_v4,
            alternate_resolver_v6=off_v6,
            addresses=[TRANSIT_V4_PREFIX.network_address + 1],
        )

    providers = {
        provider: PublicResolverNode(provider, directory)
        for provider in sspec.effective_providers()
    }

    # -- attach everything --------------------------------------------------------
    for node in [host, cpe, access, border, core, isp_resolver]:
        net.add_node(node)
    if middlebox is not None:
        net.add_node(middlebox)
    if external is not None:
        assert off_as_resolver is not None
        net.add_node(external)
        net.add_node(off_as_resolver)
    for node in providers.values():
        net.add_node(node)

    # -- links ---------------------------------------------------------------------
    # When the ISP hosts its DNS infrastructure outside the client AS
    # (§6 limitation), its interception middlebox sits with that
    # infrastructure — beyond the border, where bogon queries cannot
    # reach it.
    middlebox_inside = middlebox is not None and inside_as
    middlebox_outside = middlebox is not None and not inside_as

    net.connect("host", "cpe", 0.5)
    net.connect("cpe", "access", 4.0)
    if middlebox_inside:
        net.connect("access", "middlebox", 0.5)
        net.connect("middlebox", "border", 0.5)
    else:
        net.connect("access", "border", 1.0)
    if inside_as:
        net.connect("border", "isp-resolver", 1.5)
    elif middlebox_outside:
        net.connect("border", "middlebox", 6.0)
        net.connect("middlebox", "core", 6.0)
        net.connect("middlebox", "isp-resolver", 2.0)
        net.connect("core", "isp-resolver", 5.0)
    else:
        net.connect("core", "isp-resolver", 5.0)
    if external is not None:
        net.connect("border", "external", 8.0)
        net.connect("external", "core", 8.0)
        net.connect("external", "offas-resolver", 3.0)
        net.connect("core", "offas-resolver", 3.0)
    else:
        net.connect("border", "core", 15.0)
    for provider, node in providers.items():
        net.connect("core", node.name, 6.0)

    # -- routes -----------------------------------------------------------------------
    wan_host_route = f"{wan_v4}/32"
    access.routes.add(wan_host_route, "cpe")
    if spec.has_ipv6:
        access.routes.add(str(home_v6), "cpe")
    upstream_of_access = "middlebox" if middlebox_inside else "border"
    access.routes.add_default(upstream_of_access, family=4)
    access.routes.add_default(upstream_of_access, family=6)
    if inside_as:
        # The resolver's address falls inside the org prefix; without
        # these host routes the org-prefix routes would bounce resolver
        # traffic back toward the access layer.
        access.routes.add(f"{resolver_v4}/32", upstream_of_access)
        access.routes.add(f"{resolver_v6}/128", upstream_of_access)

    if middlebox_inside:
        middlebox.routes.add(str(v4_net), "access")
        middlebox.routes.add(str(v6_net), "access")
        middlebox.routes.add_default("border", family=4)
        middlebox.routes.add_default("border", family=6)
        middlebox.routes.add(f"{resolver_v4}/32", "border")
        middlebox.routes.add(f"{resolver_v6}/128", "border")
    elif middlebox_outside:
        middlebox.routes.add(str(v4_net), "border")
        middlebox.routes.add(str(v6_net), "border")
        middlebox.routes.add(f"{resolver_v4}/32", "isp-resolver")
        middlebox.routes.add(f"{resolver_v6}/128", "isp-resolver")
        middlebox.routes.add_default("core", family=4)
        middlebox.routes.add_default("core", family=6)

    toward_access = "middlebox" if middlebox_inside else "access"
    border.routes.add(str(v4_net), toward_access)
    border.routes.add(str(v6_net), toward_access)
    if inside_as:
        border.routes.add(f"{resolver_v4}/32", "isp-resolver")
        border.routes.add(f"{resolver_v6}/128", "isp-resolver")
        isp_resolver.gateway = "border"
    else:
        core.routes.add(f"{resolver_v4}/32", "isp-resolver")
        core.routes.add(f"{resolver_v6}/128", "isp-resolver")
        isp_resolver.gateway = "middlebox" if middlebox_outside else "core"
    if external is not None:
        upstream_of_border = "external"
    elif middlebox_outside:
        upstream_of_border = "middlebox"
    else:
        upstream_of_border = "core"
    border.routes.add_default(upstream_of_border, family=4)
    border.routes.add_default(upstream_of_border, family=6)

    if external is not None:
        assert off_as_resolver is not None
        external.routes.add(str(v4_net), "border")
        external.routes.add(str(v6_net), "border")
        off_v4, off_v6 = sorted(off_as_resolver.addresses(), key=lambda a: a.version)
        external.routes.add(f"{off_v4}/32", "offas-resolver")
        external.routes.add(f"{off_v6}/128", "offas-resolver")
        external.routes.add_default("core", family=4)
        external.routes.add_default("core", family=6)
        core.routes.add(f"{off_v4}/32", "offas-resolver")
        core.routes.add(f"{off_v6}/128", "offas-resolver")
        off_as_resolver.gateway = "core"
        core.routes.add(str(TRANSIT_V4_PREFIX), "external")
        core.routes.add(str(TRANSIT_V6_PREFIX), "external")

    if external is not None:
        toward_isp = "external"
    elif middlebox_outside:
        toward_isp = "middlebox"
    else:
        toward_isp = "border"
    core.routes.add(str(v4_net), toward_isp)
    core.routes.add(str(v6_net), toward_isp)

    for provider, node in providers.items():
        for address in node.addresses():
            suffix = 32 if address.version == 4 else 128
            core.routes.add(f"{address}/{suffix}", node.name)
        node.gateway = "core"

    if sspec.engine == "fast":
        # Answer-template caches on the pure responders only: resolver
        # answers are functions of (query wire minus id, response
        # signature), audited per class. The embedded forwarder and the
        # middleboxes are stateful relays and stay uncached.
        isp_resolver.response_cache_enabled = True
        if off_as_resolver is not None:
            off_as_resolver.response_cache_enabled = True
        for node in providers.values():
            node.response_cache_enabled = True

    scenario = Scenario(
        spec=spec,
        network=net,
        host=host,
        cpe=cpe,
        directory=directory,
        isp_resolver=isp_resolver,
        providers=providers,
        middlebox=middlebox,
        external=external,
        scenario_spec=sspec,
    )
    return scenario


# -- scenario reuse (fast engine) --------------------------------------------
#
# Scenario construction is a fifth of a serial study's runtime, yet the
# topology built for a probe depends on far less than the full spec:
# every per-probe difference (WAN address, delegated v6 prefix,
# impairment streams, event clock) can be re-homed in place. The fast
# engine therefore keeps a small LRU of built scenarios keyed by the
# *shape* below and resets one per probe; the reference engine always
# builds fresh.


def scenario_signature(sspec: ScenarioSpec) -> Optional[tuple]:
    """Hashable key of everything :func:`build_scenario` reads besides
    the per-probe values that :func:`reset_scenario` re-homes
    (``probe_id``-derived addressing and the impairment seed stream).
    Returns None when any component is unhashable — callers must then
    build fresh."""
    p = sspec.probe
    signature = (
        p.organization,
        p.firmware,
        p.isp,
        p.external_policies,
        p.has_ipv6,
        sspec.providers,
        sspec.isp_policies,
        sspec.external_policies,
        sspec.impairment,
        sspec.trace,
        sspec.engine,
    )
    try:
        hash(signature)
    except TypeError:
        return None
    return signature


def reset_scenario(scenario: Scenario, sspec: ScenarioSpec) -> Scenario:
    """Re-home a built scenario for a new probe of the same signature.

    Rewinds the event loop, clock and impairment streams
    (:meth:`~repro.net.sim.Network.reset_events`), clears every piece of
    per-probe node state (sockets, NAT table, forwarder relays, flow
    tables, query counters) and re-derives the probe-id-dependent
    addressing (WAN IPv4, delegated IPv6 prefix) including the routes
    and DNAT rules that embed those addresses. The result is
    indistinguishable from ``build_scenario(sspec)`` output in records,
    metrics and journals (packet uids differ, but they never surface).
    """
    from repro.interceptors.middlebox import MiddleboxRouter as _Middlebox
    from repro.net import Chain, NatTable
    from repro.net.node import EPHEMERAL_PORT_BASE
    from repro.resolvers.base import DnsServerNode

    spec = sspec.probe
    net = scenario.network
    net.reset_events(f"impair:{sspec.impairment_seed}:{spec.probe_id}")

    _v4_net, wan_v4, _v6_net, home_v6 = _home_addresses(spec)
    cpe = scenario.cpe
    host = scenario.host
    old_wan_v4 = cpe.wan_v4
    old_lan_v6 = cpe.lan_v6_prefix

    # Host: fresh sockets, ports, ICMP inbox, per-probe v6 address.
    host._sockets.clear()
    host._next_port = EPHEMERAL_PORT_BASE
    host.icmp_inbox.clear()
    host._addresses = {ipaddress.ip_address("192.168.1.100")}
    if spec.has_ipv6:
        host._addresses.add(home_v6.network_address + 0x100)

    # CPE: re-home WAN addressing, rebuild the state that embeds it.
    wan_v6 = (home_v6.network_address + 1) if spec.has_ipv6 else None
    cpe.wan_v4 = wan_v4
    cpe.wan_v6 = wan_v6
    cpe._addresses = {cpe.lan_gateway_v4, wan_v4}
    if wan_v6 is not None:
        cpe._addresses.add(wan_v6)
    cpe.nat = NatTable(wan_v4=wan_v4)
    if cpe.forwarder is not None:
        cpe.forwarder.reset()
    cpe.encrypted.reset()
    if old_lan_v6 is not None:
        cpe.routes.remove(str(old_lan_v6))
    cpe.lan_v6_prefix = home_v6 if spec.has_ipv6 else None
    if cpe.lan_v6_prefix is not None:
        cpe.routes.add(str(cpe.lan_v6_prefix), cpe.lan_host)
    # The v6 DNAT rule targets the (per-probe) WAN v6 address, so the
    # whole PREROUTING chain is rebuilt; the signature pins the firmware
    # flags, so the rebuilt rule set is structurally identical.
    cpe.prerouting = Chain("PREROUTING")
    if spec.firmware.intercepts_v4:
        cpe.enable_interception(family=4)
    if spec.firmware.intercepts_v6 and spec.has_ipv6:
        cpe.enable_interception(family=6)

    # Access router: the two per-probe host routes toward the CPE.
    access = net.nodes["access"]
    access.routes.remove(f"{old_wan_v4}/32")
    access.routes.add(f"{wan_v4}/32", "cpe")
    if old_lan_v6 is not None:
        access.routes.remove(str(old_lan_v6))
    if spec.has_ipv6:
        access.routes.add(str(home_v6), "cpe")

    # Per-probe counters and flow state everywhere else. Answer-template
    # caches survive: their keys include every per-probe input (the
    # query wire and the response signature).
    for node in net.nodes.values():
        if isinstance(node, DnsServerNode):
            node.queries_seen = 0
        elif isinstance(node, _Middlebox):
            node._flows.clear()
            node._encrypted_flows.clear()
            node._doq_streams.clear()
            node.intercepted_queries = 0

    net.rebuild_address_index()
    scenario.spec = spec
    scenario.scenario_spec = sspec
    scenario.notes = {}
    return scenario


class ScenarioCache:
    """A small LRU of built scenarios, reset-and-reused per probe.

    One cache per worker (or per serial run) amortises topology
    construction across a shard. Only the fast engine uses it —
    ``get`` on a reference-engine spec, an unhashable signature, or a
    directory other than the cache's own always builds fresh.
    """

    def __init__(self, directory=None, max_entries: int = 512) -> None:
        self.directory = directory
        self.max_entries = max_entries
        self._cache: "dict[tuple, Scenario]" = {}
        self.hits = 0
        self.misses = 0
        #: Probe-dedup memo used by :func:`repro.core.parallel.measure_shard`
        #: (fast engine, clean links, metrics off): records keyed by
        #: ``(signature, responds_v4, responds_v6, online, run_transparency,
    #: transport, evasion)``.
        #: It lives here because its lifetime must match the cache's — one
        #: per worker or per serial run, never shared across configs.
        self.record_memo: dict = {}

    def get(self, sspec: ScenarioSpec, directory=None) -> Scenario:
        if directory is not None:
            if self.directory is None:
                self.directory = directory
            elif directory is not self.directory:
                # A foreign directory would leak into reused resolver
                # nodes; don't mix, don't cache.
                return build_scenario(sspec, directory=directory)
        signature = (
            scenario_signature(sspec) if sspec.engine == "fast" else None
        )
        if signature is None:
            return build_scenario(sspec, directory=directory or self.directory)
        cached = self._cache.pop(signature, None)
        if cached is not None:
            self._cache[signature] = cached  # re-insert = most recent
            self.hits += 1
            return reset_scenario(cached, sspec)
        self.misses += 1
        scenario = build_scenario(sspec, directory=self.directory)
        if self.directory is None:
            self.directory = scenario.directory
        self._cache[signature] = scenario
        if len(self._cache) > self.max_entries:
            # dicts iterate in insertion order; the first key is the
            # least recently used thanks to the pop/re-insert above.
            self._cache.pop(next(iter(self._cache)))
        return scenario
