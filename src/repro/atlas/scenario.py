"""Scenario construction: a complete simulated Internet for one probe.

Each probe measurement runs against its own small network::

    host -- CPE -- access -- [middlebox] -- border -- [external] -- core
                                              |                      |
                                        ISP resolver        4 public resolvers
                                                             (+ off-AS resolver)

The border and core routers drop bogon-destined packets (they have no
route to that space and transit networks filter it), which is the
physical fact Step 3 of the methodology exploits.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field
from typing import Optional

from repro.cpe.device import CpeDevice
from repro.cpe.forwarder import ForwarderEngine
from repro.interceptors.middlebox import ExternalInterceptor, MiddleboxRouter
from repro.net import Host, Network, Router
from repro.net.addr import IPAddress
from repro.resolvers import (
    NameDirectory,
    Provider,
    PublicResolverNode,
    RecursiveResolverNode,
    build_default_directory,
)
from repro.resolvers.software import (
    ServerSoftware,
    bind_redhat,
    bind_vanilla,
    powerdns,
    unbound,
    unbound_hidden,
)

from .probe import ProbeSpec

#: Transit-network prefix hosting the external interceptor and the
#: off-AS resolver it redirects to.
TRANSIT_V4_PREFIX = ipaddress.ip_network("64.86.0.0/16")
TRANSIT_V6_PREFIX = ipaddress.ip_network("2001:5a0::/32")
#: Prefix for ISP resolvers hosted *outside* the client AS (§6 limitation).
HOSTED_DNS_V4_PREFIX = ipaddress.ip_network("185.228.0.0/16")
HOSTED_DNS_V6_PREFIX = ipaddress.ip_network("2a0d:2a00::/32")

_RESOLVER_SOFTWARE_FACTORIES = {
    "unbound-1.9.0": lambda: unbound("1.9.0"),
    "unbound-1.13.1": lambda: unbound("1.13.1"),
    "unbound-hidden": unbound_hidden,
    "unbound-routing": lambda: unbound("1.9.0", identity="routing.v2.pw"),
    "powerdns-4.1.11": powerdns,
    "bind-redhat": bind_redhat,
    "bind-9.16.15": lambda: bind_vanilla("9.16.15"),
}


def resolver_software(key: str) -> ServerSoftware:
    """Instantiate ISP resolver software from its registry key."""
    try:
        return _RESOLVER_SOFTWARE_FACTORIES[key]()
    except KeyError:
        raise KeyError(
            f"unknown resolver software {key!r}; "
            f"known: {sorted(_RESOLVER_SOFTWARE_FACTORIES)}"
        ) from None


@dataclass
class Scenario:
    """A built probe network plus the handles measurements need."""

    spec: ProbeSpec
    network: Network
    host: Host
    cpe: CpeDevice
    directory: NameDirectory
    isp_resolver: RecursiveResolverNode
    providers: dict[Provider, PublicResolverNode]
    middlebox: Optional[MiddleboxRouter] = None
    external: Optional[ExternalInterceptor] = None
    notes: dict[str, str] = field(default_factory=dict)

    @property
    def cpe_public_v4(self) -> IPAddress:
        return self.cpe.wan_v4

    @property
    def cpe_public_v6(self) -> Optional[IPAddress]:
        return self.cpe.wan_v6


def _home_addresses(spec: ProbeSpec):
    """Deterministic per-probe addressing derived from the organization."""
    org = spec.organization
    v4_net = ipaddress.ip_network(org.v4_prefix)
    wan_v4 = v4_net.network_address + 1024 + (spec.probe_id % 60000)
    v6_net = ipaddress.ip_network(org.v6_prefix)
    home_v6 = ipaddress.ip_network(
        (int(v6_net.network_address) + ((1024 + spec.probe_id) << 64), 64)
    )
    return v4_net, wan_v4, v6_net, home_v6


def build_scenario(
    spec: ProbeSpec,
    directory: Optional[NameDirectory] = None,
    trace: bool = False,
) -> Scenario:
    """Build the full network for one probe."""
    org = spec.organization
    directory = directory or build_default_directory()
    net = Network(trace=trace)

    v4_net, wan_v4, v6_net, home_v6 = _home_addresses(spec)
    isp_base_v4 = v4_net.network_address
    isp_base_v6 = v6_net.network_address

    # -- ISP resolver placement -------------------------------------------
    inside_as = not spec.isp.resolver_outside_as
    if inside_as:
        resolver_v4 = isp_base_v4 + 53
        resolver_v6 = isp_base_v6 + 0x53
    else:
        resolver_v4 = HOSTED_DNS_V4_PREFIX.network_address + 53
        resolver_v6 = HOSTED_DNS_V6_PREFIX.network_address + 0x53
    isp_resolver = RecursiveResolverNode(
        "isp-resolver",
        addresses=[resolver_v4, resolver_v6],
        directory=directory,
        software=resolver_software(spec.isp.resolver_software_key),
        asn=org.asn if inside_as else None,
    )

    # -- home -----------------------------------------------------------------
    host = Host(
        "host",
        addresses=["192.168.1.100"]
        + ([home_v6.network_address + 0x100] if spec.has_ipv6 else []),
        gateway="cpe",
        asn=org.asn,
    )
    forwarder = None
    if spec.firmware.software is not None:
        forwarder = ForwarderEngine(
            software=spec.firmware.software,
            upstream_v4=resolver_v4,
            upstream_v6=resolver_v6,
        )
    cpe = CpeDevice(
        "cpe",
        lan_v4_prefix="192.168.1.0/24",
        wan_v4=wan_v4,
        wan_gateway="access",
        lan_host="host",
        wan_v6=(home_v6.network_address + 1) if spec.has_ipv6 else None,
        lan_v6_prefix=home_v6 if spec.has_ipv6 else None,
        forwarder=forwarder,
        wan_port53_open=spec.firmware.wan_port53_open,
        model=spec.firmware.model,
        asn=org.asn,
    )
    if spec.firmware.intercepts_v4:
        cpe.enable_interception(family=4)
    if spec.firmware.intercepts_v6 and spec.has_ipv6:
        cpe.enable_interception(family=6)

    # -- ISP fabric ---------------------------------------------------------------
    access = Router("access", addresses=[isp_base_v4 + 2], asn=org.asn)
    border = Router(
        "border",
        addresses=[isp_base_v4 + 4, isp_base_v6 + 4],
        asn=org.asn,
        drop_bogons=True,
    )
    middlebox: Optional[MiddleboxRouter] = None
    if spec.isp.middlebox_policies:
        middlebox = MiddleboxRouter(
            "middlebox",
            policies=spec.isp.middlebox_policies,
            alternate_resolver_v4=resolver_v4,
            alternate_resolver_v6=resolver_v6,
            addresses=[isp_base_v4 + 3],
            asn=org.asn,
        )

    # -- beyond the AS -----------------------------------------------------------
    core = Router(
        "core",
        addresses=["198.32.0.1", "2001:500:a8::1"],
        drop_bogons=True,
    )
    external: Optional[ExternalInterceptor] = None
    off_as_resolver: Optional[RecursiveResolverNode] = None
    if spec.external_policies:
        off_v4 = TRANSIT_V4_PREFIX.network_address + 0x153
        off_v6 = TRANSIT_V6_PREFIX.network_address + 0x153
        off_as_resolver = RecursiveResolverNode(
            "offas-resolver",
            addresses=[off_v4, off_v6],
            directory=directory,
            software=unbound("1.13.1", identity="open-resolver.example"),
        )
        external = ExternalInterceptor(
            "external",
            policies=spec.external_policies,
            alternate_resolver_v4=off_v4,
            alternate_resolver_v6=off_v6,
            addresses=[TRANSIT_V4_PREFIX.network_address + 1],
        )

    providers = {
        provider: PublicResolverNode(provider, directory)
        for provider in Provider
    }

    # -- attach everything --------------------------------------------------------
    for node in [host, cpe, access, border, core, isp_resolver]:
        net.add_node(node)
    if middlebox is not None:
        net.add_node(middlebox)
    if external is not None:
        assert off_as_resolver is not None
        net.add_node(external)
        net.add_node(off_as_resolver)
    for node in providers.values():
        net.add_node(node)

    # -- links ---------------------------------------------------------------------
    # When the ISP hosts its DNS infrastructure outside the client AS
    # (§6 limitation), its interception middlebox sits with that
    # infrastructure — beyond the border, where bogon queries cannot
    # reach it.
    middlebox_inside = middlebox is not None and inside_as
    middlebox_outside = middlebox is not None and not inside_as

    net.connect("host", "cpe", 0.5)
    net.connect("cpe", "access", 4.0)
    if middlebox_inside:
        net.connect("access", "middlebox", 0.5)
        net.connect("middlebox", "border", 0.5)
    else:
        net.connect("access", "border", 1.0)
    if inside_as:
        net.connect("border", "isp-resolver", 1.5)
    elif middlebox_outside:
        net.connect("border", "middlebox", 6.0)
        net.connect("middlebox", "core", 6.0)
        net.connect("middlebox", "isp-resolver", 2.0)
        net.connect("core", "isp-resolver", 5.0)
    else:
        net.connect("core", "isp-resolver", 5.0)
    if external is not None:
        net.connect("border", "external", 8.0)
        net.connect("external", "core", 8.0)
        net.connect("external", "offas-resolver", 3.0)
        net.connect("core", "offas-resolver", 3.0)
    else:
        net.connect("border", "core", 15.0)
    for provider, node in providers.items():
        net.connect("core", node.name, 6.0)

    # -- routes -----------------------------------------------------------------------
    wan_host_route = f"{wan_v4}/32"
    access.routes.add(wan_host_route, "cpe")
    if spec.has_ipv6:
        access.routes.add(str(home_v6), "cpe")
    upstream_of_access = "middlebox" if middlebox_inside else "border"
    access.routes.add_default(upstream_of_access, family=4)
    access.routes.add_default(upstream_of_access, family=6)
    if inside_as:
        # The resolver's address falls inside the org prefix; without
        # these host routes the org-prefix routes would bounce resolver
        # traffic back toward the access layer.
        access.routes.add(f"{resolver_v4}/32", upstream_of_access)
        access.routes.add(f"{resolver_v6}/128", upstream_of_access)

    if middlebox_inside:
        middlebox.routes.add(str(v4_net), "access")
        middlebox.routes.add(str(v6_net), "access")
        middlebox.routes.add_default("border", family=4)
        middlebox.routes.add_default("border", family=6)
        middlebox.routes.add(f"{resolver_v4}/32", "border")
        middlebox.routes.add(f"{resolver_v6}/128", "border")
    elif middlebox_outside:
        middlebox.routes.add(str(v4_net), "border")
        middlebox.routes.add(str(v6_net), "border")
        middlebox.routes.add(f"{resolver_v4}/32", "isp-resolver")
        middlebox.routes.add(f"{resolver_v6}/128", "isp-resolver")
        middlebox.routes.add_default("core", family=4)
        middlebox.routes.add_default("core", family=6)

    toward_access = "middlebox" if middlebox_inside else "access"
    border.routes.add(str(v4_net), toward_access)
    border.routes.add(str(v6_net), toward_access)
    if inside_as:
        border.routes.add(f"{resolver_v4}/32", "isp-resolver")
        border.routes.add(f"{resolver_v6}/128", "isp-resolver")
        isp_resolver.gateway = "border"
    else:
        core.routes.add(f"{resolver_v4}/32", "isp-resolver")
        core.routes.add(f"{resolver_v6}/128", "isp-resolver")
        isp_resolver.gateway = "middlebox" if middlebox_outside else "core"
    if external is not None:
        upstream_of_border = "external"
    elif middlebox_outside:
        upstream_of_border = "middlebox"
    else:
        upstream_of_border = "core"
    border.routes.add_default(upstream_of_border, family=4)
    border.routes.add_default(upstream_of_border, family=6)

    if external is not None:
        assert off_as_resolver is not None
        external.routes.add(str(v4_net), "border")
        external.routes.add(str(v6_net), "border")
        off_v4, off_v6 = sorted(off_as_resolver.addresses(), key=lambda a: a.version)
        external.routes.add(f"{off_v4}/32", "offas-resolver")
        external.routes.add(f"{off_v6}/128", "offas-resolver")
        external.routes.add_default("core", family=4)
        external.routes.add_default("core", family=6)
        core.routes.add(f"{off_v4}/32", "offas-resolver")
        core.routes.add(f"{off_v6}/128", "offas-resolver")
        off_as_resolver.gateway = "core"
        core.routes.add(str(TRANSIT_V4_PREFIX), "external")
        core.routes.add(str(TRANSIT_V6_PREFIX), "external")

    if external is not None:
        toward_isp = "external"
    elif middlebox_outside:
        toward_isp = "middlebox"
    else:
        toward_isp = "border"
    core.routes.add(str(v4_net), toward_isp)
    core.routes.add(str(v6_net), toward_isp)

    for provider, node in providers.items():
        for address in node.addresses():
            suffix = 32 if address.version == 4 else 128
            core.routes.add(f"{address}/{suffix}", node.name)
        node.gateway = "core"

    scenario = Scenario(
        spec=spec,
        network=net,
        host=host,
        cpe=cpe,
        directory=directory,
        isp_resolver=isp_resolver,
        providers=providers,
        middlebox=middlebox,
        external=external,
    )
    return scenario
