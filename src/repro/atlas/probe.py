"""Probe specifications: one measured household each.

A :class:`ProbeSpec` is the ground truth for one vantage point — which
network it sits in, what CPE it has, what (if anything) intercepts its
DNS, and how reliably it responds to measurement requests. The
methodology never reads the ground truth; it is used only to *build* the
scenario and later to score the classifier against reality.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.cpe.firmware import FirmwareProfile, honest_router
from repro.interceptors.policy import InterceptionPolicy

from .geo import Organization


class InterceptorLocation(enum.Enum):
    """Ground-truth interceptor placement for a probe."""

    NONE = "none"
    CPE = "cpe"
    ISP = "isp"
    BEYOND = "beyond"  # transit path outside the client's AS


@dataclass(frozen=True)
class IspBehavior:
    """The probe's ISP: resolver software and optional middlebox policies.

    ``middlebox_policies`` is a tuple evaluated first-match-wins; more
    than one policy expresses mixed per-resolver behaviour (the "Both"
    category of Figure 3) and separate IPv6 policies.
    """

    resolver_software_key: str = "unbound-1.9.0"
    middlebox_policies: tuple[InterceptionPolicy, ...] = ()
    # §6 limitation: if the ISP's resolver lives outside the client AS,
    # bogon queries can't prove "within ISP" even for in-ISP middleboxes.
    resolver_outside_as: bool = False
    #: NXDOMAIN monetisation: the ISP resolver forges an A record
    #: pointing here for nonexistent names (the cert detector's
    #: nxdomain-rewrite canary catches it; plaintext content heuristics
    #: never query a nonexistent name).
    nxdomain_wildcard_to: Optional[str] = None


@dataclass(frozen=True)
class ProbeSpec:
    """Everything needed to build and measure one probe's scenario."""

    probe_id: int
    organization: Organization
    firmware: FirmwareProfile = field(default_factory=honest_router)
    isp: IspBehavior = field(default_factory=IspBehavior)
    external_policies: tuple[InterceptionPolicy, ...] = ()
    has_ipv6: bool = False
    #: Per-provider response availability: order matches PROVIDERS in the
    #: catalog; False means this probe never answered that provider's
    #: measurements (models RIPE Atlas scheduling/connectivity losses and
    #: produces the differing per-resolver totals of Table 4).
    responds_v4: tuple[bool, bool, bool, bool] = (True, True, True, True)
    responds_v6: tuple[bool, bool, bool, bool] = (True, True, True, True)
    online: bool = True

    @property
    def country(self) -> str:
        return self.organization.country

    @property
    def asn(self) -> int:
        return self.organization.asn

    def true_location(self) -> InterceptorLocation:
        """Ground truth: where is this probe's (IPv4) interceptor?"""
        if self.firmware.is_interceptor:
            return InterceptorLocation.CPE
        # Encrypted-only middleboxes (plaintext=False) never touch the
        # port-53 path the locator measures, so for *this* ground truth
        # — which scores the plaintext locator — they do not count.
        if any(p.plaintext for p in self.isp.middlebox_policies):
            return InterceptorLocation.ISP
        if any(p.plaintext for p in self.external_policies):
            return InterceptorLocation.BEYOND
        return InterceptorLocation.NONE

    def is_intercepted(self) -> bool:
        return self.true_location() is not InterceptorLocation.NONE
