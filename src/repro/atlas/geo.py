"""Countries and organizations for the synthetic probe fleet.

RIPE Atlas is heavily biased toward Europe and North America and toward
technically inclined volunteers ("geek bias") — the paper is explicit
that its prevalence numbers inherit this bias (§4, §6). The synthetic
fleet reproduces that bias: organization weights approximate the real
platform's probe distribution circa 2021, and interception weights are
tuned so the *shape* of Figures 3-4 (Comcast on top, a mix of US/EU
ISPs, a Russian and Turkish presence) emerges from sampling.

Weights are relative, not probabilities; the population generator
normalises them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Organization:
    """One access network: name (as reports show it), ASN, country."""

    name: str
    asn: int
    country: str  # ISO 3166-1 alpha-2
    probe_weight: float  # share of the fleet hosted in this network
    intercept_weight: float  # share of *interception* observed here
    v4_prefix: str
    v6_prefix: str
    deploys_xb6: bool = False  # ISPs renting RDK-B gateways (§5)


#: The catalog the fleet is sampled from. Prefixes are documentation-free
#: public space assigned uniquely per organization so probe addresses
#: never collide across scenarios.
ORGANIZATIONS: tuple[Organization, ...] = (
    # -- North America ----------------------------------------------------
    Organization("Comcast", 7922, "US", 7.0, 22.0, "24.0.0.0/12", "2601::/24", True),
    Organization("Charter", 20115, "US", 2.6, 3.0, "24.16.0.0/13", "2600:6c00::/26"),
    Organization("AT&T", 7018, "US", 2.2, 2.0, "12.0.0.0/12", "2600:1700::/28"),
    Organization("Verizon", 701, "US", 1.8, 1.0, "71.96.0.0/12", "2600:4000::/26"),
    Organization("Cox", 22773, "US", 1.2, 1.5, "68.0.0.0/13", "2600:8800::/28"),
    Organization("Shaw", 6327, "CA", 1.0, 3.5, "64.59.0.0/16", "2604:3d00::/24", True),
    Organization("Rogers", 812, "CA", 0.9, 1.0, "99.224.0.0/12", "2607:fea8::/32"),
    Organization("Bell Canada", 577, "CA", 0.8, 0.5, "70.48.0.0/13", "2607:f2c0::/32"),
    # -- Europe ------------------------------------------------------------
    Organization("Deutsche Telekom", 3320, "DE", 5.5, 2.5, "79.192.0.0/10", "2003::/19"),
    Organization("Vodafone DE", 3209, "DE", 3.0, 4.0, "88.64.0.0/11", "2a02:810::/29", True),
    Organization("1&1 Versatel", 8881, "DE", 1.6, 0.5, "89.244.0.0/14", "2a02:2450::/29"),
    Organization("Orange", 3215, "FR", 3.2, 1.5, "90.0.0.0/9", "2a01:c000::/26"),
    Organization("Free SAS", 12322, "FR", 2.8, 2.0, "82.224.0.0/11", "2a01:e000::/26"),
    Organization("SFR", 15557, "FR", 1.4, 0.8, "77.192.0.0/11", "2a02:8400::/25"),
    Organization("BT", 2856, "GB", 2.4, 1.2, "81.128.0.0/11", "2a00:2300::/25"),
    Organization("Sky UK", 5607, "GB", 1.8, 1.5, "90.192.0.0/11", "2a02:c7f::/32"),
    Organization("Virgin Media", 5089, "GB", 1.7, 2.8, "81.96.0.0/12", "2a02:8000::/27", True),
    Organization("Ziggo", 33915, "NL", 1.9, 2.2, "84.24.0.0/13", "2001:1c00::/23", True),
    Organization("KPN", 1136, "NL", 1.7, 0.8, "77.160.0.0/11", "2a02:a440::/26"),
    Organization("XS4ALL", 3265, "NL", 1.0, 0.3, "82.92.0.0/14", "2a02:a460::/27"),
    Organization("Telia", 3301, "SE", 1.4, 0.7, "81.224.0.0/12", "2a00:1d80::/26"),
    Organization("Telenor", 2119, "NO", 1.0, 0.5, "84.208.0.0/13", "2a01:79c0::/27"),
    Organization("Swisscom", 3303, "CH", 1.5, 0.6, "84.72.0.0/13", "2a02:120::/27"),
    Organization("Proximus", 5432, "BE", 1.0, 0.5, "81.240.0.0/12", "2a02:a000::/24"),
    Organization("Telefonica ES", 3352, "ES", 1.3, 1.0, "80.24.0.0/13", "2a02:9000::/24"),
    Organization("Telecom Italia", 3269, "IT", 1.4, 1.2, "79.0.0.0/11", "2a00:1620::/27"),
    Organization("Orange Polska", 5617, "PL", 1.2, 2.0, "83.0.0.0/11", "2a00:f40::/29"),
    Organization("UPC Polska", 6830, "PL", 0.9, 2.5, "89.64.0.0/13", "2a02:a310::/28", True),
    Organization("Vodafone CZ", 16019, "CZ", 0.8, 0.6, "89.102.0.0/15", "2a00:1028::/29"),
    Organization("Magyar Telekom", 5483, "HU", 0.7, 0.6, "84.0.0.0/13", "2001:4c48::/29"),
    Organization("A1 Austria", 8447, "AT", 0.9, 0.5, "77.116.0.0/14", "2001:870::/28"),
    # -- Eastern Europe / Middle East ------------------------------------
    Organization("Rostelecom", 12389, "RU", 1.3, 4.5, "87.224.0.0/11", "2a1f:d8c0::/29"),
    Organization("ER-Telecom", 31483, "RU", 0.7, 2.8, "94.24.0.0/13", "2a02:2698::/29"),
    Organization("MTS", 8359, "RU", 0.6, 1.8, "95.24.0.0/13", "2a00:1fa0::/27"),
    Organization("Turk Telekom", 9121, "TR", 0.7, 3.8, "88.224.0.0/11", "2a01:358::/29"),
    Organization("Turkcell", 16135, "TR", 0.4, 1.6, "85.96.0.0/12", "2a02:e0::/29"),
    Organization("Bezeq", 8551, "IL", 0.5, 1.2, "79.176.0.0/13", "2a02:6680::/29"),
    # -- Asia-Pacific / other ----------------------------------------------
    Organization("NTT", 4713, "JP", 0.8, 0.8, "60.32.0.0/12", "2400:4050::/28"),
    Organization("Telstra", 1221, "AU", 0.7, 1.0, "58.160.0.0/12", "2403:5800::/28"),
    Organization("Vodafone NZ", 9500, "NZ", 0.4, 0.9, "121.98.0.0/15", "2407:7000::/27", True),
    Organization("Airtel", 24560, "IN", 0.5, 1.5, "122.160.0.0/12", "2401:4900::/27"),
    Organization("China Unicom", 4837, "CN", 0.3, 2.2, "112.224.0.0/11", "2408:8000::/20"),
    Organization("Vivo", 26599, "BR", 0.5, 1.4, "177.0.0.0/12", "2804:14c::/31"),
    Organization("Claro BR", 28573, "BR", 0.4, 1.0, "177.32.0.0/12", "2804:14d::/32"),
    Organization("MWEB", 10474, "ZA", 0.3, 0.8, "105.224.0.0/12", "2c0f:f4c0::/32"),
)


def organization_by_name(name: str) -> Organization:
    for org in ORGANIZATIONS:
        if org.name == name:
            return org
    raise KeyError(name)


def organization_by_asn(asn: int) -> Organization:
    for org in ORGANIZATIONS:
        if org.asn == asn:
            return org
    raise KeyError(asn)


def as_identity(asn: "int | None", label: str) -> str:
    """Certificate identity for an operator-run node inside an AS.

    Every addressable node in the simulation presents a TLS identity
    derived from its operator: ``as_identity(7922, "dot.isp-resolver")``
    -> ``"dot.isp-resolver.as7922.example.net"``. Nodes without an AS
    (hosted/transit infrastructure) fall back to the bare label under
    ``example.net``.
    """
    if asn is None:
        return f"{label}.example.net"
    return f"{label}.as{asn}.example.net"


def total_probe_weight() -> float:
    return sum(org.probe_weight for org in ORGANIZATIONS)


def countries() -> list[str]:
    return sorted({org.country for org in ORGANIZATIONS})
