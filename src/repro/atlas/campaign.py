"""Measurement campaigns: the RIPE-Atlas data model over the fleet.

The pilot study (:mod:`repro.core.study`) runs the paper's fixed
pipeline. A :class:`Campaign` is the generic layer underneath — the
shape of what RIPE Atlas actually offers: *measurement definitions*
(one-off DNS measurements toward a target, scheduled across probes)
producing per-probe *result rows* with timestamps, RTTs and answers,
serialisable like the platform's JSON results. Useful for running
custom experiments over the synthetic fleet without touching the
pipeline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from repro.dnswire import Message, QClass, QType, RCode, make_query
from repro.net.addr import parse_ip

from .measurement import MeasurementClient
from .probe import ProbeSpec
from .scenario import Scenario, build_scenario


@dataclass(frozen=True)
class MeasurementDefinition:
    """One Atlas-style DNS measurement."""

    msm_id: int
    target: str  # resolver address the probes query
    qname: str
    qtype: int = QType.A
    qclass: int = QClass.IN
    description: str = ""

    @property
    def family(self) -> int:
        return parse_ip(self.target).version

    def build_query(self, rng: Optional[random.Random] = None) -> Message:
        return make_query(self.qname, self.qtype, self.qclass, rng=rng)


@dataclass(frozen=True)
class MeasurementRow:
    """One probe's result for one measurement (Atlas result-row style)."""

    msm_id: int
    probe_id: int
    timestamp_ms: float
    rt_ms: Optional[float]
    rcode: Optional[str]
    answers: tuple[str, ...] = ()
    error: Optional[str] = None

    @property
    def succeeded(self) -> bool:
        return self.error is None and self.rcode is not None

    def to_dict(self) -> dict[str, Any]:
        return {
            "msm_id": self.msm_id,
            "prb_id": self.probe_id,
            "timestamp": self.timestamp_ms,
            "rt": self.rt_ms,
            "rcode": self.rcode,
            "answers": list(self.answers),
            "error": self.error,
        }


class Campaign:
    """A set of measurement definitions scheduled over probe specs."""

    def __init__(self, definitions: Iterable[MeasurementDefinition]) -> None:
        self.definitions = list(definitions)
        ids = [d.msm_id for d in self.definitions]
        if len(ids) != len(set(ids)):
            raise ValueError("duplicate msm_id in campaign")

    def run_on_scenario(
        self, scenario: Scenario, rng: Optional[random.Random] = None
    ) -> list[MeasurementRow]:
        """Run every definition from one built scenario."""
        client = MeasurementClient(scenario.network, scenario.host)
        rows: list[MeasurementRow] = []
        for definition in self.definitions:
            if client.host.address_for_family(definition.family) is None:
                rows.append(
                    MeasurementRow(
                        msm_id=definition.msm_id,
                        probe_id=scenario.spec.probe_id,
                        timestamp_ms=scenario.network.now,
                        rt_ms=None,
                        rcode=None,
                        error="address-family-unavailable",
                    )
                )
                continue
            exchange = client.exchange(
                definition.target, definition.build_query(rng=rng)
            )
            if exchange.response is None:
                rows.append(
                    MeasurementRow(
                        msm_id=definition.msm_id,
                        probe_id=scenario.spec.probe_id,
                        timestamp_ms=scenario.network.now,
                        rt_ms=None,
                        rcode=None,
                        error="timeout",
                    )
                )
                continue
            answers = tuple(
                exchange.response.txt_strings()
                + exchange.response.a_addresses()
                + exchange.response.aaaa_addresses()
            )
            rows.append(
                MeasurementRow(
                    msm_id=definition.msm_id,
                    probe_id=scenario.spec.probe_id,
                    timestamp_ms=scenario.network.now,
                    rt_ms=exchange.rtt_ms,
                    rcode=RCode.label(exchange.response.rcode),
                    answers=answers,
                )
            )
        return rows

    def run(
        self,
        specs: Iterable[ProbeSpec],
        progress: Optional[Callable[[int], None]] = None,
    ) -> list[MeasurementRow]:
        """Run the campaign across a fleet (offline probes yield no rows,
        like probes that never picked the measurement up)."""
        rows: list[MeasurementRow] = []
        for index, spec in enumerate(specs):
            if not spec.online:
                continue
            scenario = build_scenario(spec)
            rng = random.Random(spec.probe_id * 31 + 7)
            rows.extend(self.run_on_scenario(scenario, rng=rng))
            if progress is not None:
                progress(index + 1)
        return rows
