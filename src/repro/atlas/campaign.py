"""Measurement campaigns: the RIPE-Atlas data model over the fleet.

The pilot study (:mod:`repro.core.study`) runs the paper's fixed
pipeline. A :class:`Campaign` is the generic layer underneath — the
shape of what RIPE Atlas actually offers: *measurement definitions*
(one-off DNS measurements toward a target, scheduled across probes)
producing per-probe *result rows* with timestamps, RTTs and answers,
serialisable like the platform's JSON results. Useful for running
custom experiments over the synthetic fleet without touching the
pipeline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from repro.dnswire import Message, QClass, QType, RCode, make_query
from repro.net.addr import parse_ip

from .measurement import MeasurementClient
from .probe import ProbeSpec
from .scenario import Scenario, build_scenario


@dataclass(frozen=True)
class MeasurementDefinition:
    """One Atlas-style DNS measurement."""

    msm_id: int
    target: str  # resolver address the probes query
    qname: str
    qtype: int = QType.A
    qclass: int = QClass.IN
    description: str = ""

    @property
    def family(self) -> int:
        return parse_ip(self.target).version

    def build_query(self, rng: Optional[random.Random] = None) -> Message:
        return make_query(self.qname, self.qtype, self.qclass, rng=rng)

    def to_dict(self) -> dict[str, Any]:
        return {
            "msm_id": self.msm_id,
            "target": self.target,
            "qname": self.qname,
            "qtype": self.qtype,
            "qclass": self.qclass,
            "description": self.description,
        }


def definition_from_dict(data: dict[str, Any]) -> MeasurementDefinition:
    """Rebuild a definition from its :meth:`MeasurementDefinition.
    to_dict` form; unknown keys are rejected (a typo'd field must not
    silently vanish from the round trip)."""
    allowed = {"msm_id", "target", "qname", "qtype", "qclass", "description"}
    unknown = set(data) - allowed
    if unknown:
        raise ValueError(f"unknown definition fields: {sorted(unknown)}")
    return MeasurementDefinition(
        msm_id=int(data["msm_id"]),
        target=str(data["target"]),
        qname=str(data["qname"]),
        qtype=int(data.get("qtype", QType.A)),
        qclass=int(data.get("qclass", QClass.IN)),
        description=str(data.get("description", "")),
    )


@dataclass(frozen=True)
class MeasurementRow:
    """One probe's result for one measurement (Atlas result-row style)."""

    msm_id: int
    probe_id: int
    timestamp_ms: float
    rt_ms: Optional[float]
    rcode: Optional[str]
    answers: tuple[str, ...] = ()
    error: Optional[str] = None

    @property
    def succeeded(self) -> bool:
        return self.error is None and self.rcode is not None

    def to_dict(self) -> dict[str, Any]:
        return {
            "msm_id": self.msm_id,
            "prb_id": self.probe_id,
            "timestamp": self.timestamp_ms,
            "rt": self.rt_ms,
            "rcode": self.rcode,
            "answers": list(self.answers),
            "error": self.error,
        }


def row_from_dict(data: dict[str, Any]) -> MeasurementRow:
    """Rebuild a row from its Atlas-style :meth:`MeasurementRow.to_dict`
    form (the shape the result store journals)."""
    rt_ms = data.get("rt")
    return MeasurementRow(
        msm_id=int(data["msm_id"]),
        probe_id=int(data["prb_id"]),
        timestamp_ms=float(data["timestamp"]),
        rt_ms=None if rt_ms is None else float(rt_ms),
        rcode=None if data.get("rcode") is None else str(data["rcode"]),
        answers=tuple(str(answer) for answer in data.get("answers", [])),
        error=None if data.get("error") is None else str(data["error"]),
    )


class Campaign:
    """A set of measurement definitions scheduled over probe specs."""

    def __init__(self, definitions: Iterable[MeasurementDefinition]) -> None:
        self.definitions = list(definitions)
        ids = [d.msm_id for d in self.definitions]
        if len(ids) != len(set(ids)):
            raise ValueError("duplicate msm_id in campaign")

    def run_on_scenario(
        self, scenario: Scenario, rng: Optional[random.Random] = None
    ) -> list[MeasurementRow]:
        """Run every definition from one built scenario."""
        client = MeasurementClient(scenario.network, scenario.host)
        rows: list[MeasurementRow] = []
        for definition in self.definitions:
            if client.host.address_for_family(definition.family) is None:
                rows.append(
                    MeasurementRow(
                        msm_id=definition.msm_id,
                        probe_id=scenario.spec.probe_id,
                        timestamp_ms=scenario.network.now,
                        rt_ms=None,
                        rcode=None,
                        error="address-family-unavailable",
                    )
                )
                continue
            exchange = client.exchange(
                definition.target, definition.build_query(rng=rng)
            )
            if exchange.response is None:
                rows.append(
                    MeasurementRow(
                        msm_id=definition.msm_id,
                        probe_id=scenario.spec.probe_id,
                        timestamp_ms=scenario.network.now,
                        rt_ms=None,
                        rcode=None,
                        error="timeout",
                    )
                )
                continue
            answers = tuple(
                exchange.response.txt_strings()
                + exchange.response.a_addresses()
                + exchange.response.aaaa_addresses()
            )
            rows.append(
                MeasurementRow(
                    msm_id=definition.msm_id,
                    probe_id=scenario.spec.probe_id,
                    timestamp_ms=scenario.network.now,
                    rt_ms=exchange.rtt_ms,
                    rcode=RCode.label(exchange.response.rcode),
                    answers=answers,
                )
            )
        return rows

    def _measure_probe(self, spec: ProbeSpec) -> list[MeasurementRow]:
        scenario = build_scenario(spec)
        rng = random.Random(spec.probe_id * 31 + 7)
        return self.run_on_scenario(scenario, rng=rng)

    def run(
        self,
        specs: Iterable[ProbeSpec],
        progress: Optional[Callable[[int], None]] = None,
        store=None,
    ) -> list[MeasurementRow]:
        """Run the campaign across a fleet (offline probes yield no rows,
        like probes that never picked the measurement up).

        With a :class:`~repro.store.ResultStore`, every probe's rows are
        journaled as they land (offline probes journal an empty row set,
        so they count as covered), already-journaled probes are skipped
        on resume, and the returned list — rebuilt from the journal in
        fleet order — is identical to a store-less run. A spent probe
        budget raises :class:`~repro.store.StoreInterrupted`.
        """
        specs = list(specs)
        if store is None:
            rows: list[MeasurementRow] = []
            for index, spec in enumerate(specs):
                if not spec.online:
                    continue
                rows.extend(self._measure_probe(spec))
                if progress is not None:
                    progress(index + 1)
            return rows

        from repro.store import StoreInterrupted

        done = store.begin_campaign(self.definitions, specs)
        measured = 0
        truncated = False
        try:
            for index, spec in enumerate(specs):
                if index in done:
                    continue
                if (
                    store.probe_budget is not None
                    and measured >= store.probe_budget
                ):
                    truncated = True
                    break
                probe_rows = self._measure_probe(spec) if spec.online else []
                store.append_campaign(index, spec.probe_id, probe_rows)
                measured += 1
                if progress is not None:
                    progress(index + 1)
        finally:
            store.sync()
        if truncated:
            raise StoreInterrupted(len(done) + measured, len(specs))
        rows = store.collect_campaign()
        store.finalize_campaign()
        return rows
