"""Retry policies: how a stub resolver retransmits an unanswered query.

:func:`~repro.atlas.measurement.dns_exchange` historically took a flat
``retries`` / ``retry_interval_ms`` pair — fixed-interval retransmission,
which is what the simplest stub resolvers do. Chaos studies over
impaired links want the behaviour real resolvers actually ship:
exponential backoff with jitter, so retransmissions both spread out and
decorrelate.

A policy is a frozen dataclass that answers one question: for a given
query, what are the delays between consecutive transmissions? The
exchange loop owns everything else (the overall ``timeout_ms`` budget,
the no-retransmission-at-or-past-deadline rule, attempt accounting).

Determinism: :class:`ExponentialBackoffRetry` draws its jitter from a
``random.Random`` seeded with ``(seed, msg_id)`` as a string — stable
across processes and hash randomization — so a fleet study's
retransmission schedule is a pure function of its specs and seed, for
any worker count.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """Base: ``retries`` extra transmissions after the first.

    Subclasses implement :meth:`delays_ms`; the base class itself never
    retransmits (``retries=0`` mirrors the historical default).
    """

    retries: int = 0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0: {self.retries}")

    def delays_ms(self, msg_id: int = 0) -> tuple[float, ...]:
        """Delay before each retransmission, in order, for one query.

        ``msg_id`` lets jittered policies derive a per-query stream; the
        base and fixed-interval policies ignore it.
        """
        return ()


@dataclass(frozen=True)
class FixedIntervalRetry(RetryPolicy):
    """The historical behaviour: every ``interval_ms``, like clockwork."""

    interval_ms: float = 1000.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.interval_ms <= 0:
            raise ValueError(f"interval_ms must be > 0: {self.interval_ms}")

    def delays_ms(self, msg_id: int = 0) -> tuple[float, ...]:
        return (self.interval_ms,) * self.retries


@dataclass(frozen=True)
class ExponentialBackoffRetry(RetryPolicy):
    """Exponential backoff with deterministic jitter.

    Retry *k* (0-based) waits ``base_ms * factor**k``, capped at
    ``max_interval_ms``, then scaled by a jitter factor drawn uniformly
    from ``[1 - jitter, 1 + jitter]``. The jitter stream is seeded from
    ``(seed, msg_id)``, so two queries back off differently but the same
    query always backs off the same way.
    """

    base_ms: float = 250.0
    factor: float = 2.0
    max_interval_ms: float = 4000.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.base_ms <= 0:
            raise ValueError(f"base_ms must be > 0: {self.base_ms}")
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1: {self.factor}")
        if self.max_interval_ms < self.base_ms:
            raise ValueError("max_interval_ms must be >= base_ms")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1): {self.jitter}")

    def delays_ms(self, msg_id: int = 0) -> tuple[float, ...]:
        rng = random.Random(f"retry:{self.seed}:{msg_id}")
        delays = []
        for attempt in range(self.retries):
            interval = min(self.base_ms * self.factor**attempt, self.max_interval_ms)
            if self.jitter:
                interval *= rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)
            delays.append(interval)
        return tuple(delays)


def default_chaos_retry(seed: int = 0) -> ExponentialBackoffRetry:
    """The retry policy chaos studies use unless told otherwise.

    Five retransmissions starting at 250 ms: against the calibrated
    ``residential`` profile (~20% per-attempt exchange failure across a
    probe's full path) this leaves a residual exchange-failure rate
    under 1e-3 — comfortably inside the ≥99% verdict-stability budget —
    while the backoff keeps every retransmission within the standard
    5-second exchange deadline.
    """
    return ExponentialBackoffRetry(retries=5, seed=seed)
