"""Domain names with RFC 1035 wire encoding, including compression.

``DnsName`` is an immutable sequence of labels. Comparison and hashing are
case-insensitive, as DNS requires, but the original spelling is preserved
for presentation — this matters when an interceptor echoes a query name
back and we want to show exactly what appeared on the wire.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from .enums import MAX_LABEL_LENGTH, MAX_NAME_LENGTH
from .wire import TruncatedMessageError, WireError, WireReader, WireWriter

#: Compression pointer marker bits (RFC 1035 §4.1.4).
_POINTER_MASK = 0xC0
#: Safety bound on pointer chases, far above any legal message's need.
_MAX_POINTER_HOPS = 128


class NameError_(WireError):
    """Raised for malformed domain names."""


def _ends_with_unescaped_dot(text: str) -> bool:
    """True if the final ``.`` of ``text`` is a label separator.

    A trailing dot is escaped (part of the last label) exactly when it is
    preceded by an odd number of backslashes: ``"a\\."`` ends in a literal
    dot, while ``"a\\\\."`` ends in an escaped backslash plus a separator.
    """
    if not text.endswith("."):
        return False
    backslashes = 0
    for ch in reversed(text[:-1]):
        if ch != "\\":
            break
        backslashes += 1
    return backslashes % 2 == 0


def _unescape(text: str) -> list[str]:
    """Split presentation-format ``text`` into labels.

    Honours ``\\.`` (literal dot), ``\\\\`` (literal backslash) and RFC
    4343 ``\\DDD`` decimal escapes for bytes that do not print safely.
    """
    labels: list[str] = []
    current: list[str] = []
    it = iter(text)
    for ch in it:
        if ch == "\\":
            nxt = next(it, None)
            if nxt is None:
                raise NameError_(f"dangling escape in name: {text!r}")
            if nxt.isdigit():
                digits = nxt + "".join(next(it, "") for _ in range(2))
                if len(digits) != 3 or not digits.isdigit() or int(digits) > 255:
                    raise NameError_(f"bad \\DDD escape in name: {text!r}")
                current.append(chr(int(digits)))
            else:
                current.append(nxt)
        elif ch == ".":
            labels.append("".join(current))
            current = []
        else:
            current.append(ch)
    labels.append("".join(current))
    return labels


def _escape_label(label: str) -> str:
    """Presentation-escape one label: ``\\.``, ``\\\\`` and ``\\DDD``.

    Whitespace and control characters are escaped decimally so that
    presentation text survives ``from_text`` (which strips outer
    whitespace) and terminal display unambiguously.
    """
    out: list[str] = []
    for ch in label:
        if ch in ("\\", "."):
            out.append("\\" + ch)
        elif ch <= " " or ch == "\x7f":
            out.append(f"\\{ord(ch):03d}")
        else:
            out.append(ch)
    return "".join(out)


class DnsName:
    """An immutable, case-insensitively-compared domain name."""

    __slots__ = ("_labels", "_key", "_hash")

    def __init__(self, labels: Iterable[str] = ()) -> None:
        labels = tuple(labels)
        # Both bounds are over *encoded* bytes: a multi-byte UTF-8 label
        # is longer on the wire than its character count suggests.
        encoded_len = 1
        for label in labels:
            if not label:
                raise NameError_("empty label inside a name")
            raw_len = len(label.encode("utf-8", "surrogateescape"))
            if raw_len > MAX_LABEL_LENGTH:
                raise NameError_(f"label too long: {label!r}")
            encoded_len += raw_len + 1
        if encoded_len > MAX_NAME_LENGTH:
            raise NameError_(f"name too long ({encoded_len} bytes)")
        self._labels = labels
        self._key = tuple(label.lower() for label in labels)
        self._hash: int | None = None

    # -- construction --------------------------------------------------

    @classmethod
    def from_text(cls, text: str) -> "DnsName":
        """Parse presentation format, e.g. ``"id.server."``.

        A single ``"."`` (or ``""``) is the root name.
        """
        # Strip only ASCII whitespace: exactly the characters ``to_text``
        # renders as \DDD escapes, so decoded hostile labels that begin
        # or end with exotic Unicode whitespace survive a text roundtrip.
        text = text.strip(" \t\r\n\x0b\x0c")
        if text in ("", "."):
            return cls(())
        if _ends_with_unescaped_dot(text):
            text = text[:-1]
        return cls(_unescape(text))

    @classmethod
    def root(cls) -> "DnsName":
        return cls(())

    # -- properties -----------------------------------------------------

    @property
    def labels(self) -> tuple[str, ...]:
        return self._labels

    @property
    def is_root(self) -> bool:
        return not self._labels

    def to_text(self) -> str:
        """Presentation format with a trailing dot (root is ``"."``)."""
        if not self._labels:
            return "."
        return ".".join(_escape_label(label) for label in self._labels) + "."

    def parent(self) -> "DnsName":
        """The name with its leftmost label removed; root's parent is root."""
        if not self._labels:
            return self
        return DnsName(self._labels[1:])

    def is_subdomain_of(self, other: "DnsName") -> bool:
        """True if ``self`` equals or falls under ``other``."""
        if len(other._key) > len(self._key):
            return False
        if not other._key:
            return True
        return self._key[-len(other._key):] == other._key

    def relativize(self, origin: "DnsName") -> tuple[str, ...]:
        """Labels of ``self`` left of ``origin`` (``self`` must be under it)."""
        if not self.is_subdomain_of(origin):
            raise NameError_(f"{self.to_text()} is not under {origin.to_text()}")
        if not origin._labels:
            return self._labels
        return self._labels[: len(self._labels) - len(origin._labels)]

    def prepend(self, label: str) -> "DnsName":
        return DnsName((label,) + self._labels)

    def concatenate(self, suffix: "DnsName") -> "DnsName":
        return DnsName(self._labels + suffix._labels)

    # -- wire format ----------------------------------------------------

    def encode(self, writer: WireWriter, compress: bool = True) -> None:
        """Append this name, using compression pointers where possible."""
        labels = self._labels
        for index in range(len(labels)):
            # The key is the label tuple itself, not a dotted join: a
            # label containing "." must never alias a two-label suffix.
            # It is also *case-exact* (the spelled labels, not the
            # lowercased comparison key): RFC 1035 §4.1.4 compression is
            # allowed across case, but pointing at a differently-cased
            # earlier spelling silently rewrites this name on the wire —
            # fatal for 0x20-style case fidelity, where the echoed
            # spelling is the signal.
            suffix_key = labels[index:]
            if compress:
                pointer = writer.lookup_name(suffix_key)
                if pointer is not None:
                    writer.write_u16(_POINTER_MASK << 8 | pointer)
                    return
            writer.remember_name(suffix_key, writer.offset)
            raw = labels[index].encode("utf-8", "surrogateescape")
            writer.write_u8(len(raw))
            writer.write_bytes(raw)
        writer.write_u8(0)

    @classmethod
    def decode(cls, reader: WireReader) -> "DnsName":
        """Read a (possibly compressed) name at the reader's cursor."""
        labels: list[str] = []
        hops = 0
        encoded_len = 1
        return_offset: int | None = None
        while True:
            length = reader.read_u8()
            if length & _POINTER_MASK == _POINTER_MASK:
                low = reader.read_u8()
                target = (length & ~_POINTER_MASK) << 8 | low
                if return_offset is None:
                    return_offset = reader.offset
                if target >= len(reader.data):
                    raise TruncatedMessageError("pointer beyond buffer")
                hops += 1
                if hops > _MAX_POINTER_HOPS:
                    raise NameError_("compression pointer loop")
                reader.seek(target)
                continue
            if length & _POINTER_MASK:
                raise NameError_(f"reserved label type: {length:#x}")
            if length == 0:
                break
            raw = reader.read_bytes(length)
            # Enforce RFC 1035's 255-byte bound on the *reassembled* name
            # as it accumulates, so a pointer-grafted hostile name is
            # rejected early instead of growing to buffer scale.
            encoded_len += length + 1
            if encoded_len > MAX_NAME_LENGTH:
                raise NameError_(
                    f"name exceeds {MAX_NAME_LENGTH} wire bytes"
                )
            labels.append(raw.decode("utf-8", "surrogateescape"))
        if return_offset is not None:
            reader.seek(return_offset)
        return cls(labels)

    # -- dunder ----------------------------------------------------------

    def __iter__(self) -> Iterator[str]:
        return iter(self._labels)

    def __len__(self) -> int:
        return len(self._labels)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, DnsName):
            return self._key == other._key
        if isinstance(other, str):
            return self._key == DnsName.from_text(other)._key
        return NotImplemented

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = self._hash = hash(self._key)
        return cached

    def __lt__(self, other: "DnsName") -> bool:
        return self._key < other._key

    def __repr__(self) -> str:
        return f"DnsName({self.to_text()!r})"

    def __str__(self) -> str:
        return self.to_text()


#: Presentation-text parse memo for :func:`name`. Keys are the raw input
#: strings, so distinct spellings (case, escapes) stay distinct.
_NAME_CACHE: dict[str, DnsName] = {}
_NAME_CACHE_MAX = 4096


def name(text: "str | DnsName") -> DnsName:
    """Coerce ``text`` to a :class:`DnsName` (identity for DnsName input)."""
    if isinstance(text, DnsName):
        return text
    cached = _NAME_CACHE.get(text)
    if cached is None:
        cached = DnsName.from_text(text)
        if len(_NAME_CACHE) >= _NAME_CACHE_MAX:
            _NAME_CACHE.clear()
        _NAME_CACHE[text] = cached
    return cached
