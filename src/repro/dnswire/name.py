"""Domain names with RFC 1035 wire encoding, including compression.

``DnsName`` is an immutable sequence of labels. Comparison and hashing are
case-insensitive, as DNS requires, but the original spelling is preserved
for presentation — this matters when an interceptor echoes a query name
back and we want to show exactly what appeared on the wire.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from .enums import MAX_LABEL_LENGTH, MAX_NAME_LENGTH
from .wire import TruncatedMessageError, WireError, WireReader, WireWriter

#: Compression pointer marker bits (RFC 1035 §4.1.4).
_POINTER_MASK = 0xC0
#: Safety bound on pointer chases, far above any legal message's need.
_MAX_POINTER_HOPS = 128


class NameError_(WireError):
    """Raised for malformed domain names."""


def _unescape(text: str) -> list[str]:
    """Split presentation-format ``text`` into labels, honouring ``\\.``."""
    labels: list[str] = []
    current: list[str] = []
    it = iter(text)
    for ch in it:
        if ch == "\\":
            nxt = next(it, None)
            if nxt is None:
                raise NameError_(f"dangling escape in name: {text!r}")
            current.append(nxt)
        elif ch == ".":
            labels.append("".join(current))
            current = []
        else:
            current.append(ch)
    labels.append("".join(current))
    return labels


class DnsName:
    """An immutable, case-insensitively-compared domain name."""

    __slots__ = ("_labels", "_key")

    def __init__(self, labels: Iterable[str] = ()) -> None:
        labels = tuple(labels)
        for label in labels:
            if not label:
                raise NameError_("empty label inside a name")
            if len(label.encode("utf-8", "surrogateescape")) > MAX_LABEL_LENGTH:
                raise NameError_(f"label too long: {label!r}")
        encoded_len = sum(len(lb) + 1 for lb in labels) + 1
        if encoded_len > MAX_NAME_LENGTH:
            raise NameError_(f"name too long ({encoded_len} bytes)")
        self._labels = labels
        self._key = tuple(label.lower() for label in labels)

    # -- construction --------------------------------------------------

    @classmethod
    def from_text(cls, text: str) -> "DnsName":
        """Parse presentation format, e.g. ``"id.server."``.

        A single ``"."`` (or ``""``) is the root name.
        """
        text = text.strip()
        if text in ("", "."):
            return cls(())
        if text.endswith(".") and not text.endswith("\\."):
            text = text[:-1]
        return cls(_unescape(text))

    @classmethod
    def root(cls) -> "DnsName":
        return cls(())

    # -- properties -----------------------------------------------------

    @property
    def labels(self) -> tuple[str, ...]:
        return self._labels

    @property
    def is_root(self) -> bool:
        return not self._labels

    def to_text(self) -> str:
        """Presentation format with a trailing dot (root is ``"."``)."""
        if not self._labels:
            return "."
        escaped = [
            label.replace("\\", "\\\\").replace(".", "\\.")
            for label in self._labels
        ]
        return ".".join(escaped) + "."

    def parent(self) -> "DnsName":
        """The name with its leftmost label removed; root's parent is root."""
        if not self._labels:
            return self
        return DnsName(self._labels[1:])

    def is_subdomain_of(self, other: "DnsName") -> bool:
        """True if ``self`` equals or falls under ``other``."""
        if len(other._key) > len(self._key):
            return False
        if not other._key:
            return True
        return self._key[-len(other._key):] == other._key

    def relativize(self, origin: "DnsName") -> tuple[str, ...]:
        """Labels of ``self`` left of ``origin`` (``self`` must be under it)."""
        if not self.is_subdomain_of(origin):
            raise NameError_(f"{self.to_text()} is not under {origin.to_text()}")
        if not origin._labels:
            return self._labels
        return self._labels[: len(self._labels) - len(origin._labels)]

    def prepend(self, label: str) -> "DnsName":
        return DnsName((label,) + self._labels)

    def concatenate(self, suffix: "DnsName") -> "DnsName":
        return DnsName(self._labels + suffix._labels)

    # -- wire format ----------------------------------------------------

    def encode(self, writer: WireWriter, compress: bool = True) -> None:
        """Append this name, using compression pointers where possible."""
        labels = self._labels
        for index in range(len(labels)):
            suffix_key = ".".join(self._key[index:])
            if compress:
                pointer = writer.lookup_name(suffix_key)
                if pointer is not None:
                    writer.write_u16(_POINTER_MASK << 8 | pointer)
                    return
            writer.remember_name(suffix_key, writer.offset)
            raw = labels[index].encode("utf-8", "surrogateescape")
            writer.write_u8(len(raw))
            writer.write_bytes(raw)
        writer.write_u8(0)

    @classmethod
    def decode(cls, reader: WireReader) -> "DnsName":
        """Read a (possibly compressed) name at the reader's cursor."""
        labels: list[str] = []
        hops = 0
        return_offset: int | None = None
        while True:
            length = reader.read_u8()
            if length & _POINTER_MASK == _POINTER_MASK:
                low = reader.read_u8()
                target = (length & ~_POINTER_MASK) << 8 | low
                if return_offset is None:
                    return_offset = reader.offset
                if target >= len(reader.data):
                    raise TruncatedMessageError("pointer beyond buffer")
                hops += 1
                if hops > _MAX_POINTER_HOPS:
                    raise NameError_("compression pointer loop")
                reader.seek(target)
                continue
            if length & _POINTER_MASK:
                raise NameError_(f"reserved label type: {length:#x}")
            if length == 0:
                break
            raw = reader.read_bytes(length)
            labels.append(raw.decode("utf-8", "surrogateescape"))
            if len(labels) > MAX_NAME_LENGTH:
                raise NameError_("runaway name decode")
        if return_offset is not None:
            reader.seek(return_offset)
        return cls(labels)

    # -- dunder ----------------------------------------------------------

    def __iter__(self) -> Iterator[str]:
        return iter(self._labels)

    def __len__(self) -> int:
        return len(self._labels)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, DnsName):
            return self._key == other._key
        if isinstance(other, str):
            return self._key == DnsName.from_text(other)._key
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._key)

    def __lt__(self, other: "DnsName") -> bool:
        return self._key < other._key

    def __repr__(self) -> str:
        return f"DnsName({self.to_text()!r})"

    def __str__(self) -> str:
        return self.to_text()


def name(text: "str | DnsName") -> DnsName:
    """Coerce ``text`` to a :class:`DnsName` (identity for DnsName input)."""
    if isinstance(text, DnsName):
        return text
    return DnsName.from_text(text)
