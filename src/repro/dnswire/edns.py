"""EDNS(0) — the OPT pseudo-record and the Client-Subnet option.

RFC 6891 defines OPT: a pseudo-record in the additional section whose
class field carries the requester's UDP payload size and whose TTL field
packs the extended RCODE and flags. RFC 7871 defines the EDNS
Client-Subnet (ECS) option that public resolvers attach when talking to
authoritatives — and that Google's ``o-o.myaddr.l.google.com`` debugging
name echoes back as a second TXT string, a detail measurement code in
the wild has to tolerate (our Google matcher strips it).
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field, replace
from typing import Optional

from .enums import QClass, QType
from .message import Message
from .name import DnsName
from .rr import OpaqueData, ResourceRecord
from .wire import WireError, WireReader, WireWriter

#: Option code for EDNS Client Subnet (RFC 7871).
OPTION_CLIENT_SUBNET = 8
#: Default advertised UDP payload size.
DEFAULT_PAYLOAD_SIZE = 1232
#: The DO (DNSSEC OK) bit in the OPT TTL field.
DO_FLAG = 0x8000


@dataclass(frozen=True)
class EdnsOption:
    """One raw EDNS option (code, payload)."""

    code: int
    data: bytes

    def encode(self, writer: WireWriter) -> None:
        writer.write_u16(self.code)
        writer.write_u16(len(self.data))
        writer.write_bytes(self.data)


@dataclass(frozen=True)
class ClientSubnet:
    """A decoded ECS option."""

    network: "ipaddress.IPv4Network | ipaddress.IPv6Network"
    scope_prefix_len: int = 0

    @property
    def family(self) -> int:
        return self.network.version

    def to_option(self) -> EdnsOption:
        writer = WireWriter()
        family_code = 1 if self.family == 4 else 2
        writer.write_u16(family_code)
        writer.write_u8(self.network.prefixlen)
        writer.write_u8(self.scope_prefix_len)
        # Address truncated to the bytes covering the prefix (RFC 7871 §6).
        nbytes = (self.network.prefixlen + 7) // 8
        writer.write_bytes(self.network.network_address.packed[:nbytes])
        return EdnsOption(OPTION_CLIENT_SUBNET, writer.getvalue())

    @classmethod
    def from_option(cls, option: EdnsOption) -> "ClientSubnet":
        if option.code != OPTION_CLIENT_SUBNET:
            raise WireError(f"not an ECS option: code {option.code}")
        reader = WireReader(option.data)
        family_code = reader.read_u16()
        source_len = reader.read_u8()
        scope_len = reader.read_u8()
        raw = reader.read_bytes(reader.remaining())
        if family_code == 1:
            if source_len > 32:
                raise WireError(f"ECS IPv4 prefix length {source_len} > 32")
            packed = (raw + b"\x00" * 4)[:4]
            address = ipaddress.IPv4Address(packed)
        elif family_code == 2:
            if source_len > 128:
                raise WireError(f"ECS IPv6 prefix length {source_len} > 128")
            packed = (raw + b"\x00" * 16)[:16]
            address = ipaddress.IPv6Address(packed)
        else:
            raise WireError(f"unknown ECS family {family_code}")
        try:
            network = ipaddress.ip_network(f"{address}/{source_len}", strict=False)
        except ValueError as exc:  # pragma: no cover - defence in depth
            raise WireError(f"malformed ECS option: {exc}") from exc
        return cls(network=network, scope_prefix_len=scope_len)

    def to_text(self) -> str:
        return f"{self.network}"


@dataclass(frozen=True)
class Edns:
    """Decoded EDNS state of a message."""

    payload_size: int = DEFAULT_PAYLOAD_SIZE
    extended_rcode: int = 0
    version: int = 0
    dnssec_ok: bool = False
    options: tuple[EdnsOption, ...] = ()

    def client_subnet(self) -> Optional[ClientSubnet]:
        for option in self.options:
            if option.code == OPTION_CLIENT_SUBNET:
                return ClientSubnet.from_option(option)
        return None

    def to_record(self) -> ResourceRecord:
        """Build the OPT pseudo-record for the additional section."""
        ttl = (self.extended_rcode << 24) | (self.version << 16)
        if self.dnssec_ok:
            ttl |= DO_FLAG
        writer = WireWriter()
        for option in self.options:
            option.encode(writer)
        return ResourceRecord(
            name=DnsName.root(),
            rdtype=int(QType.OPT),
            rdclass=self.payload_size,
            ttl=ttl,
            rdata=OpaqueData(writer.getvalue(), int(QType.OPT)),
        )

    @classmethod
    def from_record(cls, record: ResourceRecord) -> "Edns":
        if int(record.rdtype) != int(QType.OPT):
            raise WireError("not an OPT record")
        raw = record.rdata.raw if isinstance(record.rdata, OpaqueData) else b""
        reader = WireReader(raw)
        options: list[EdnsOption] = []
        while not reader.at_end():
            code = reader.read_u16()
            length = reader.read_u16()
            options.append(EdnsOption(code, reader.read_bytes(length)))
        return cls(
            payload_size=int(record.rdclass),
            extended_rcode=(record.ttl >> 24) & 0xFF,
            version=(record.ttl >> 16) & 0xFF,
            dnssec_ok=bool(record.ttl & DO_FLAG),
            options=tuple(options),
        )


def get_edns(message: Message) -> Optional[Edns]:
    """The message's EDNS state, or None if it carries no OPT record."""
    for record in message.additionals:
        if int(record.rdtype) == int(QType.OPT):
            return Edns.from_record(record)
    return None


def with_edns(
    message: Message,
    payload_size: int = DEFAULT_PAYLOAD_SIZE,
    options: tuple[EdnsOption, ...] = (),
    dnssec_ok: bool = False,
) -> Message:
    """Return ``message`` with an OPT record replacing any existing one."""
    edns = Edns(payload_size=payload_size, options=options, dnssec_ok=dnssec_ok)
    additionals = tuple(
        record
        for record in message.additionals
        if int(record.rdtype) != int(QType.OPT)
    ) + (edns.to_record(),)
    return replace(message, additionals=additionals)


def with_client_subnet(
    message: Message,
    network: "str | ipaddress.IPv4Network | ipaddress.IPv6Network",
    payload_size: int = DEFAULT_PAYLOAD_SIZE,
) -> Message:
    """Attach an ECS option (convenience for resolver->authoritative hops)."""
    if isinstance(network, str):
        network = ipaddress.ip_network(network)
    option = ClientSubnet(network=network).to_option()
    return with_edns(message, payload_size=payload_size, options=(option,))
