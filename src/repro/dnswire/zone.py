"""Minimal authoritative zone storage.

A :class:`Zone` maps (owner name, class, type) to record sets and supports
exact-match lookup, CNAME chasing (one level — enough for our zones),
wildcard owners (``*.example.com``) and *dynamic* owners whose RDATA is
computed per-query. Dynamic owners are how we model ``whoami.akamai.com``,
which answers with the egress address of whichever resolver asked —
the oracle the paper uses for its transparency check (§4.1.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from .enums import QClass, QType, RCode
from .name import DnsName, name
from .rr import ResourceRecord

#: A dynamic answer function: (qname, querier source address) -> records.
DynamicAnswer = Callable[[DnsName, str], "list[ResourceRecord]"]


@dataclass
class LookupResult:
    """Outcome of a zone lookup."""

    rcode: int = RCode.NOERROR
    records: list[ResourceRecord] = field(default_factory=list)

    @property
    def found(self) -> bool:
        return self.rcode == RCode.NOERROR and bool(self.records)


class Zone:
    """An authoritative zone rooted at ``origin``."""

    def __init__(self, origin: "str | DnsName") -> None:
        self.origin = name(origin)
        self._records: dict[tuple[DnsName, int, int], list[ResourceRecord]] = {}
        self._dynamic: dict[tuple[DnsName, int, int], DynamicAnswer] = {}

    # -- population ----------------------------------------------------

    def add(self, record: ResourceRecord) -> None:
        """Add a static record. The owner must be inside the zone."""
        if not record.name.is_subdomain_of(self.origin):
            raise ValueError(
                f"{record.name.to_text()} is outside zone {self.origin.to_text()}"
            )
        key = (record.name, int(record.rdclass), int(record.rdtype))
        self._records.setdefault(key, []).append(record)

    def add_all(self, records: Iterable[ResourceRecord]) -> None:
        for record in records:
            self.add(record)

    def add_dynamic(
        self,
        owner: "str | DnsName",
        rdtype: int,
        answer: DynamicAnswer,
        rdclass: int = QClass.IN,
    ) -> None:
        """Register a per-query computed answer for (owner, class, type)."""
        owner = name(owner)
        if not owner.is_subdomain_of(self.origin):
            raise ValueError(
                f"{owner.to_text()} is outside zone {self.origin.to_text()}"
            )
        self._dynamic[(owner, int(rdclass), int(rdtype))] = answer

    # -- lookup -----------------------------------------------------------

    def covers(self, qname: "str | DnsName") -> bool:
        return name(qname).is_subdomain_of(self.origin)

    def lookup(
        self,
        qname: "str | DnsName",
        qtype: int,
        qclass: int = QClass.IN,
        source: str = "",
    ) -> LookupResult:
        """Resolve ``qname``/``qtype`` within this zone.

        ``source`` is the querying client's address, forwarded to dynamic
        answers (the whoami mechanism). Returns NXDOMAIN when the name has
        no records of any type, and an empty NOERROR when the name exists
        but not with the requested type (NODATA).
        """
        qname = name(qname)
        if not self.covers(qname):
            return LookupResult(rcode=RCode.REFUSED)

        dynamic = self._dynamic.get((qname, int(qclass), int(qtype)))
        if dynamic is not None:
            return LookupResult(records=list(dynamic(qname, source)))

        key = (qname, int(qclass), int(qtype))
        records = self._records.get(key)
        if records:
            return LookupResult(records=list(records))

        # CNAME chase (single level; our zones never chain CNAMEs).
        cname_key = (qname, int(qclass), int(QType.CNAME))
        cnames = self._records.get(cname_key)
        if cnames and int(qtype) != int(QType.CNAME):
            chased = list(cnames)
            target = cnames[0].rdata.target
            follow = self.lookup(target, qtype, qclass, source) if self.covers(target) else None
            if follow is not None and follow.found:
                chased.extend(follow.records)
            return LookupResult(records=chased)

        # Wildcard match: *.parent owns qname if no closer match exists.
        wildcard = self._wildcard_match(qname, qtype, qclass)
        if wildcard is not None:
            synthesized = [
                ResourceRecord(qname, rr.rdtype, rr.rdclass, rr.ttl, rr.rdata)
                for rr in wildcard
            ]
            return LookupResult(records=synthesized)

        if self._name_exists(qname, qclass):
            return LookupResult()  # NODATA
        return LookupResult(rcode=RCode.NXDOMAIN)

    def _name_exists(self, qname: DnsName, qclass: int) -> bool:
        for owner, rdclass, _rdtype in list(self._records) + list(self._dynamic):
            if rdclass != int(qclass):
                continue
            if owner == qname or owner.is_subdomain_of(qname):
                return True
        return False

    def _wildcard_match(
        self, qname: DnsName, qtype: int, qclass: int
    ) -> Optional[list[ResourceRecord]]:
        ancestor = qname.parent()
        while ancestor.is_subdomain_of(self.origin):
            star = ancestor.prepend("*")
            records = self._records.get((star, int(qclass), int(qtype)))
            if records:
                return records
            if ancestor.is_root or ancestor == self.origin:
                break
            ancestor = ancestor.parent()
        return None

    def __len__(self) -> int:
        return sum(len(v) for v in self._records.values()) + len(self._dynamic)

    def __repr__(self) -> str:
        return f"Zone({self.origin.to_text()!r}, {len(self)} records)"
