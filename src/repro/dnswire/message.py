"""DNS message: header, question, and the four record sections.

This is a complete RFC 1035 message codec. All server and client models in
the reproduction exchange *encoded* messages over the simulated network —
exactly like the real system — so parser behaviour (including on hostile
or malformed responses from interceptors) is part of what is under test.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from .enums import Opcode, QClass, QType, RCode
from .name import DnsName, name
from .rr import MxData, NameData, RData, ResourceRecord, SoaData
from .wire import WireError, WireReader, WireWriter

_FLAG_QR = 0x8000
_FLAG_AA = 0x0400
_FLAG_TC = 0x0200
_FLAG_RD = 0x0100
_FLAG_RA = 0x0080
_OPCODE_SHIFT = 11
_OPCODE_MASK = 0xF
_RCODE_MASK = 0xF


@dataclass(frozen=True)
class Flags:
    """Decoded DNS header flag word."""

    qr: bool = False
    opcode: int = Opcode.QUERY
    aa: bool = False
    tc: bool = False
    rd: bool = True
    ra: bool = False
    rcode: int = RCode.NOERROR

    def encode(self) -> int:
        word = 0
        if self.qr:
            word |= _FLAG_QR
        word |= (int(self.opcode) & _OPCODE_MASK) << _OPCODE_SHIFT
        if self.aa:
            word |= _FLAG_AA
        if self.tc:
            word |= _FLAG_TC
        if self.rd:
            word |= _FLAG_RD
        if self.ra:
            word |= _FLAG_RA
        word |= int(self.rcode) & _RCODE_MASK
        return word

    @classmethod
    def decode(cls, word: int) -> "Flags":
        return cls(
            qr=bool(word & _FLAG_QR),
            opcode=Opcode.decode((word >> _OPCODE_SHIFT) & _OPCODE_MASK),
            aa=bool(word & _FLAG_AA),
            tc=bool(word & _FLAG_TC),
            rd=bool(word & _FLAG_RD),
            ra=bool(word & _FLAG_RA),
            rcode=RCode.decode(word & _RCODE_MASK),
        )


@dataclass(frozen=True)
class Question:
    """A question-section entry."""

    qname: DnsName
    qtype: int
    qclass: int = QClass.IN

    def __post_init__(self) -> None:
        object.__setattr__(self, "qname", name(self.qname))

    def encode(self, writer: WireWriter) -> None:
        self.qname.encode(writer)
        writer.write_u16(int(self.qtype))
        writer.write_u16(int(self.qclass))

    @classmethod
    def decode(cls, reader: WireReader) -> "Question":
        qname = DnsName.decode(reader)
        qtype = QType.decode(reader.read_u16())
        qclass = QClass.decode(reader.read_u16())
        return cls(qname, qtype, qclass)

    def to_text(self) -> str:
        return (
            f"{self.qname.to_text()} {QClass.label(self.qclass)} "
            f"{QType.label(self.qtype)}"
        )


@dataclass(frozen=True)
class Message:
    """A DNS message (query or response)."""

    msg_id: int = 0
    flags: Flags = field(default_factory=Flags)
    questions: tuple[Question, ...] = ()
    answers: tuple[ResourceRecord, ...] = ()
    authorities: tuple[ResourceRecord, ...] = ()
    additionals: tuple[ResourceRecord, ...] = ()

    # -- convenience accessors -------------------------------------------

    @property
    def is_response(self) -> bool:
        return self.flags.qr

    @property
    def rcode(self) -> int:
        return self.flags.rcode

    @property
    def question(self) -> Question | None:
        """The first (and in practice only) question, or None."""
        return self.questions[0] if self.questions else None

    def answer_texts(self) -> list[str]:
        """Presentation-format RDATA of each answer record."""
        return [rr.rdata.to_text() for rr in self.answers]

    def txt_strings(self) -> list[str]:
        """Joined TXT payloads of all TXT answers, in order.

        This is the view the interception detector consumes: the answer
        to a location query or a ``version.bind`` query is the
        concatenated character-strings of its TXT answer.
        """
        out: list[str] = []
        for rr in self.answers:
            joined = getattr(rr.rdata, "joined", None)
            if joined is not None:
                out.append(joined)
        return out

    def a_addresses(self) -> list[str]:
        """Dotted-quad strings of all A answers (for whoami checks)."""
        return [
            str(rr.rdata.address)
            for rr in self.answers
            if rr.rdtype == QType.A
        ]

    def aaaa_addresses(self) -> list[str]:
        return [
            str(rr.rdata.address)
            for rr in self.answers
            if rr.rdtype == QType.AAAA
        ]

    # -- wire format -------------------------------------------------------

    def encode(self) -> bytes:
        msg_id = self.msg_id
        if not 0 <= msg_id <= 0xFFFF:
            raise WireError(f"u16 out of range: {msg_id}")
        # Everything after the 2-byte id encodes identically for messages
        # with the same content, including compression pointer offsets
        # (the id is fixed-width), so the tail is memoised and only the id
        # is re-stamped. Keys are case-exact (see _encode_key) because
        # DnsName equality is case-insensitive but encoding is not.
        try:
            key = _encode_key(self)
            tail = _ENCODE_TAILS.get(key)
        except TypeError:
            key = None
            tail = None
        if tail is not None:
            return msg_id.to_bytes(2, "big") + tail
        writer = WireWriter()
        writer.write_u16(msg_id)
        writer.write_u16(self.flags.encode())
        writer.write_u16(len(self.questions))
        writer.write_u16(len(self.answers))
        writer.write_u16(len(self.authorities))
        writer.write_u16(len(self.additionals))
        for question in self.questions:
            question.encode(writer)
        for section in (self.answers, self.authorities, self.additionals):
            for record in section:
                record.encode(writer)
        wire = writer.getvalue()
        if key is not None:
            if len(_ENCODE_TAILS) >= _ENCODE_CACHE_MAX:
                _ENCODE_TAILS.clear()
            _ENCODE_TAILS[key] = wire[2:]
        return wire

    @classmethod
    def decode(cls, data: bytes) -> "Message":
        reader = WireReader(data)
        msg_id = reader.read_u16()
        flags = Flags.decode(reader.read_u16())
        qdcount = reader.read_u16()
        ancount = reader.read_u16()
        nscount = reader.read_u16()
        arcount = reader.read_u16()
        questions = tuple(Question.decode(reader) for _ in range(qdcount))
        answers = tuple(ResourceRecord.decode(reader) for _ in range(ancount))
        authorities = tuple(ResourceRecord.decode(reader) for _ in range(nscount))
        additionals = tuple(ResourceRecord.decode(reader) for _ in range(arcount))
        return cls(msg_id, flags, questions, answers, authorities, additionals)

    # -- builders ------------------------------------------------------------

    def reply(
        self,
        rcode: int = RCode.NOERROR,
        answers: tuple[ResourceRecord, ...] = (),
        authoritative: bool = False,
        recursion_available: bool = True,
        truncated: bool = False,
        additionals: tuple[ResourceRecord, ...] = (),
    ) -> "Message":
        """Build a response to this query, echoing id and question.

        ``truncated`` sets the TC bit (a server signalling an answer too
        large for the transport); ``additionals`` carries OPT or other
        additional-section records — by default the reply drops the
        query's additionals, as the zoo's servers historically have.
        """
        return Message(
            msg_id=self.msg_id,
            flags=Flags(
                qr=True,
                opcode=self.flags.opcode,
                aa=authoritative,
                tc=truncated,
                rd=self.flags.rd,
                ra=recursion_available,
                rcode=rcode,
            ),
            questions=self.questions,
            answers=tuple(answers),
            additionals=tuple(additionals),
        )

    def with_id(self, msg_id: int) -> "Message":
        return replace(self, msg_id=msg_id)

    def to_text(self) -> str:
        lines = [
            f";; id {self.msg_id} opcode {Opcode.label(self.flags.opcode)} "
            f"rcode {RCode.label(self.flags.rcode)}"
            + (" qr" if self.flags.qr else "")
            + (" aa" if self.flags.aa else "")
            + (" rd" if self.flags.rd else "")
            + (" ra" if self.flags.ra else "")
        ]
        if self.questions:
            lines.append(";; QUESTION")
            lines.extend("  " + q.to_text() for q in self.questions)
        for title, section in (
            ("ANSWER", self.answers),
            ("AUTHORITY", self.authorities),
            ("ADDITIONAL", self.additionals),
        ):
            if section:
                lines.append(f";; {title}")
                lines.extend("  " + rr.to_text() for rr in section)
        return "\n".join(lines)


def make_query(
    qname: "str | DnsName",
    qtype: int,
    qclass: int = QClass.IN,
    msg_id: int | None = None,
    recursion_desired: bool = True,
    rng: random.Random | None = None,
) -> Message:
    """Construct a standard single-question query message."""
    if msg_id is None:
        msg_id = (rng or random).randint(0, 0xFFFF)
    return Message(
        msg_id=msg_id,
        flags=Flags(qr=False, rd=recursion_desired),
        questions=(Question(name(qname), qtype, qclass),),
    )


# -- hot-path caches -------------------------------------------------------
#
# The measurement pipeline encodes and decodes the same handful of
# logical messages millions of times, differing only in the 2-byte id.
# Both caches below key on everything *except* the id and re-stamp it.

#: Content key -> encoded bytes after the id. Bounded; cleared when full.
_ENCODE_TAILS: dict[tuple, bytes] = {}
_ENCODE_CACHE_MAX = 4096

#: Wire tail (bytes after the id) -> decoded Message template, or the
#: garbage marker when those bytes do not decode. Bounded as above.
_DECODE_GARBAGE = object()
_DECODE_CACHE: "dict[bytes, Message | object]" = {}
_DECODE_CACHE_MAX = 4096


def _rdata_key(rdata: RData) -> object:
    # DnsName equality/hash is case-insensitive, so every RDATA kind that
    # carries a name is keyed on its exact label spelling here. Value-only
    # kinds (A/AAAA/TXT/Opaque) compare exactly and key as themselves.
    if isinstance(rdata, NameData):
        return (type(rdata).__name__, rdata.target.labels)
    if isinstance(rdata, SoaData):
        return (
            "SOA",
            rdata.mname.labels,
            rdata.rname.labels,
            rdata.serial,
            rdata.refresh,
            rdata.retry,
            rdata.expire,
            rdata.minimum,
        )
    if isinstance(rdata, MxData):
        return ("MX", rdata.preference, rdata.exchange.labels)
    return (type(rdata).__name__, rdata)


def _record_key(record: ResourceRecord) -> tuple:
    return (
        record.name.labels,
        int(record.rdtype),
        int(record.rdclass),
        record.ttl,
        _rdata_key(record.rdata),
    )


def _encode_key(message: Message) -> tuple:
    """Case-exact content key for the encode-tail cache (id excluded)."""
    return (
        message.flags,
        tuple(
            (q.qname.labels, int(q.qtype), int(q.qclass))
            for q in message.questions
        ),
        tuple(_record_key(r) for r in message.answers),
        tuple(_record_key(r) for r in message.authorities),
        tuple(_record_key(r) for r in message.additionals),
    )


def decode_or_none(data: bytes) -> Message | None:
    """Decode ``data``; return None (rather than raising) on garbage.

    Client code uses this at the measurement edge: a hostile or broken
    interceptor may emit bytes that are not a DNS message at all, which the
    measurement must treat as "no usable response", not a crash.

    The net is deliberately narrow: every decoder in this package is
    required to surface malformed input as :class:`WireError` (RDATA
    decoders wrap stray ``ValueError``-family exceptions at the source in
    ``rr.py``), and ``repro.fuzz``'s hostile-bytes oracle enforces that
    ``Message.decode`` raises nothing else on arbitrary buffers.

    Results are memoised on the bytes after the id. The one way the id
    bytes can influence anything beyond ``msg_id`` is a compression
    pointer targeting offset 0 or 1 (i.e. the two-byte sequences C0 00 /
    C0 01 somewhere in the buffer); such buffers bypass the cache.
    """
    if len(data) < 2:
        return None
    if b"\xc0\x00" in data or b"\xc0\x01" in data:
        try:
            return Message.decode(data)
        except (WireError, IndexError):
            return None
    key = bytes(data[2:])
    cached = _DECODE_CACHE.get(key)
    if cached is None:
        try:
            cached = Message.decode(data)
        except (WireError, IndexError):
            cached = _DECODE_GARBAGE
        if len(_DECODE_CACHE) >= _DECODE_CACHE_MAX:
            _DECODE_CACHE.clear()
        _DECODE_CACHE[key] = cached
    if cached is _DECODE_GARBAGE:
        return None
    assert isinstance(cached, Message)
    msg_id = int.from_bytes(data[:2], "big")
    if cached.msg_id == msg_id:
        return cached
    return Message(
        msg_id,
        cached.flags,
        cached.questions,
        cached.answers,
        cached.authorities,
        cached.additionals,
    )
