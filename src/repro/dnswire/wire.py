"""Low-level byte readers and writers for DNS wire encoding.

The DNS wire format mixes fixed-width big-endian integers, length-prefixed
labels and backward compression pointers. :class:`WireWriter` and
:class:`WireReader` provide a small, explicit API over a byte buffer so
the higher-level encoders stay readable.
"""

from __future__ import annotations

import struct


class WireError(ValueError):
    """Raised when a DNS message cannot be encoded or decoded."""


class TruncatedMessageError(WireError):
    """Raised when the wire buffer ends before a field is complete."""


class WireWriter:
    """Append-only writer producing a DNS wire-format byte string.

    Bytes accumulate in a single ``bytearray``: appends extend the buffer
    in place without wrapping each chunk in a fresh ``bytes`` object, and
    already-written fields (e.g. an RDLENGTH placeholder) can be patched
    through :meth:`patch_u16` once their value is known.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        # Name compression state: case-exact label-tuple suffix -> offset.
        # Keys preserve the spelled labels (not a lowercased comparison
        # form): a pointer to a differently-cased earlier spelling would
        # rewrite the later name on the wire and break 0x20 case fidelity.
        self._name_offsets: dict[tuple[str, ...], int] = {}
        # While True, remember_name is a no-op. RDATA encoders set this so
        # names inside RDATA (always encoded uncompressed) never become
        # compression targets for later names in the same message.
        self._names_paused = False

    def __len__(self) -> int:
        return len(self._buffer)

    @property
    def offset(self) -> int:
        """Current write offset (== number of bytes written so far)."""
        return len(self._buffer)

    def write_bytes(self, data: bytes) -> None:
        # ``+=`` copies the payload into the buffer directly; immutable
        # input no longer takes an extra bytes(data) round trip, and
        # mutable buffers (bytearray/memoryview) are still copied by the
        # extend itself, so later mutation cannot corrupt the message.
        self._buffer += data

    def write_u8(self, value: int) -> None:
        if not 0 <= value <= 0xFF:
            raise WireError(f"u8 out of range: {value}")
        self._buffer.append(value)

    def write_u16(self, value: int) -> None:
        if not 0 <= value <= 0xFFFF:
            raise WireError(f"u16 out of range: {value}")
        self._buffer += struct.pack("!H", value)

    def write_u32(self, value: int) -> None:
        if not 0 <= value <= 0xFFFFFFFF:
            raise WireError(f"u32 out of range: {value}")
        self._buffer += struct.pack("!I", value)

    def patch_u16(self, offset: int, value: int) -> None:
        """Overwrite two already-written bytes at ``offset`` with ``value``."""
        if not 0 <= value <= 0xFFFF:
            raise WireError(f"u16 out of range: {value}")
        if not 0 <= offset <= len(self._buffer) - 2:
            raise WireError(f"patch offset out of range: {offset}")
        struct.pack_into("!H", self._buffer, offset, value)

    def pause_names(self) -> bool:
        """Stop remembering compression targets; returns the prior state."""
        prior = self._names_paused
        self._names_paused = True
        return prior

    def resume_names(self, prior: bool = False) -> None:
        """Restore the name-remembering state saved by :meth:`pause_names`."""
        self._names_paused = prior

    def remember_name(self, key: tuple[str, ...], offset: int) -> None:
        """Record that the name suffix ``key`` was encoded at ``offset``.

        Compression pointers can only target the first 0x3FFF bytes;
        suffixes beyond that are silently not remembered.
        """
        if self._names_paused:
            return
        if offset <= 0x3FFF and key not in self._name_offsets:
            self._name_offsets[key] = offset

    def lookup_name(self, key: tuple[str, ...]) -> int | None:
        """Return a previously remembered offset for ``key``, if any."""
        return self._name_offsets.get(key)

    def getvalue(self) -> bytes:
        return bytes(self._buffer)


class WireReader:
    """Cursor-based reader over a DNS wire-format byte string."""

    def __init__(self, data: bytes, offset: int = 0) -> None:
        self._data = bytes(data)
        self._offset = offset

    @property
    def offset(self) -> int:
        return self._offset

    @property
    def data(self) -> bytes:
        return self._data

    def remaining(self) -> int:
        return len(self._data) - self._offset

    def at_end(self) -> bool:
        return self._offset >= len(self._data)

    def seek(self, offset: int) -> None:
        if not 0 <= offset <= len(self._data):
            raise TruncatedMessageError(f"seek out of range: {offset}")
        self._offset = offset

    def read_bytes(self, count: int) -> bytes:
        if count < 0:
            raise WireError(f"negative read: {count}")
        if self.remaining() < count:
            raise TruncatedMessageError(
                f"need {count} bytes at offset {self._offset}, "
                f"have {self.remaining()}"
            )
        chunk = self._data[self._offset : self._offset + count]
        self._offset += count
        return chunk

    def read_u8(self) -> int:
        return self.read_bytes(1)[0]

    def read_u16(self) -> int:
        return struct.unpack("!H", self.read_bytes(2))[0]

    def read_u32(self) -> int:
        return struct.unpack("!I", self.read_bytes(4))[0]

    def peek_u8(self) -> int:
        if self.at_end():
            raise TruncatedMessageError("peek past end of buffer")
        return self._data[self._offset]
