"""``repro.dnswire`` — a from-scratch DNS wire-protocol implementation.

Everything the reproduction sends over the simulated network is a real,
byte-encoded DNS message produced and parsed by this package: names with
compression, the record types the methodology relies on (A/AAAA/TXT plus
the usual zoo), CHAOS-class debugging queries, and authoritative zones
with dynamic (whoami-style) answers.
"""

from .enums import DNS_PORT, Opcode, QClass, QType, RCode
from .name import DnsName, name
from .rr import (
    AAAAData,
    AData,
    CnameData,
    MxData,
    NsData,
    OpaqueData,
    PtrData,
    ResourceRecord,
    SoaData,
    TxtData,
    a_record,
    aaaa_record,
    txt_record,
)
from .edns import (
    ClientSubnet,
    Edns,
    EdnsOption,
    OPTION_CLIENT_SUBNET,
    get_edns,
    with_client_subnet,
    with_edns,
)
from .message import Flags, Message, Question, decode_or_none, make_query
from .wire import TruncatedMessageError, WireError, WireReader, WireWriter
from .zone import LookupResult, Zone
from .zonefile import ZoneFileError, parse_zone
from .chaosnames import (
    HOSTNAME_BIND,
    ID_SERVER,
    VERSION_BIND,
    is_chaos_debug_question,
    make_chaos_query,
    make_id_server_query,
    make_version_bind_query,
)

__all__ = [
    "DNS_PORT",
    "Opcode",
    "QClass",
    "QType",
    "RCode",
    "DnsName",
    "name",
    "AData",
    "AAAAData",
    "TxtData",
    "NsData",
    "CnameData",
    "PtrData",
    "SoaData",
    "MxData",
    "OpaqueData",
    "ResourceRecord",
    "a_record",
    "aaaa_record",
    "txt_record",
    "ClientSubnet",
    "Edns",
    "EdnsOption",
    "OPTION_CLIENT_SUBNET",
    "get_edns",
    "with_client_subnet",
    "with_edns",
    "Flags",
    "Message",
    "Question",
    "decode_or_none",
    "make_query",
    "WireError",
    "TruncatedMessageError",
    "WireReader",
    "WireWriter",
    "Zone",
    "LookupResult",
    "ZoneFileError",
    "parse_zone",
    "ID_SERVER",
    "VERSION_BIND",
    "HOSTNAME_BIND",
    "is_chaos_debug_question",
    "make_chaos_query",
    "make_id_server_query",
    "make_version_bind_query",
]
