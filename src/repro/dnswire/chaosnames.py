"""Well-known CHAOS-class debugging query names (RFC 4892).

These names are the measurement instrument of the paper:

- ``id.server`` — server-instance identifier; the *location query* for
  Cloudflare (answers an IATA airport code) and Quad9 (answers a
  ``res###.<iata>.rrdns.pch.net`` hostname).
- ``version.bind`` — software version string; the probe used in Step 2 to
  fingerprint a CPE's embedded DNS forwarder (Table 5 in the paper lists
  the strings observed in the wild).
- ``hostname.bind`` — used by prior root-manipulation work (Jones et al.);
  included for completeness and comparison experiments.
"""

from __future__ import annotations

from .enums import QClass, QType
from .message import Message, Question, make_query
from .name import DnsName

ID_SERVER = DnsName.from_text("id.server.")
VERSION_BIND = DnsName.from_text("version.bind.")
HOSTNAME_BIND = DnsName.from_text("hostname.bind.")
VERSION_SERVER = DnsName.from_text("version.server.")

_CHAOS_NAMES = {ID_SERVER, VERSION_BIND, HOSTNAME_BIND, VERSION_SERVER}


def is_chaos_debug_question(question: Question) -> bool:
    """True if ``question`` is one of the RFC 4892 debugging queries."""
    return (
        int(question.qclass) == int(QClass.CH)
        and int(question.qtype) == int(QType.TXT)
        and question.qname in _CHAOS_NAMES
    )


def make_chaos_query(qname: "str | DnsName", msg_id: int | None = None) -> Message:
    """Build a CHAOS TXT query for ``qname``."""
    return make_query(qname, QType.TXT, QClass.CH, msg_id=msg_id)


def make_version_bind_query(msg_id: int | None = None) -> Message:
    return make_chaos_query(VERSION_BIND, msg_id=msg_id)


def make_id_server_query(msg_id: int | None = None) -> Message:
    return make_chaos_query(ID_SERVER, msg_id=msg_id)
