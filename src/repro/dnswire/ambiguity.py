"""Crafted ambiguous query wires for interceptor fingerprinting.

Real DNS software disagrees about the edges of the protocol: what to do
with a query that already has the TC bit set, a QDCOUNT of two, an
unknown EDNS option, an opcode nobody uses. The fingerprint engine
(:mod:`repro.fingerprint`) sends exactly such queries and reads each
interceptor's reaction as one coordinate of a signature vector. This
module holds the wire-level builders those probes need — the pieces the
regular :class:`~repro.dnswire.message.Message` codec is too well-behaved
to produce.
"""

from __future__ import annotations

from .enums import QClass, QType
from .message import Flags, Message, Question, make_query
from .name import DnsName
from .wire import WireWriter

#: Offset of the first question's name in any DNS message: the fixed
#: 12-byte header ends there, so ``C0 0C`` points at it.
FIRST_QNAME_OFFSET = 12


def mixed_case(text: str) -> str:
    """Deterministic 0x20 mixed-casing: alternate case per letter.

    The transform depends only on the spelling, so every probe of the
    same name sends the same bytes — byte-identical runs regardless of
    worker count or engine.
    """
    out: list[str] = []
    upper = True
    for ch in text:
        if ch.isalpha():
            out.append(ch.upper() if upper else ch.lower())
            upper = not upper
        else:
            out.append(ch)
    return "".join(out)


def mixed_case_query(
    qname: str, qtype: int = QType.A, msg_id: int = 0
) -> Message:
    """A standard query whose qname is deterministically mixed-cased."""
    return make_query(mixed_case(qname), qtype, msg_id=msg_id)


def tc_query(qname: str, qtype: int = QType.A, msg_id: int = 0) -> Message:
    """A query with the TC bit nonsensically set (TC is for responses)."""
    return Message(
        msg_id=msg_id,
        flags=Flags(qr=False, tc=True, rd=True),
        questions=(Question(DnsName.from_text(qname), qtype),),
    )


def odd_opcode_query(
    qname: str, opcode: int, qtype: int = QType.A, msg_id: int = 0
) -> Message:
    """A query carrying a non-QUERY opcode (STATUS, say)."""
    return Message(
        msg_id=msg_id,
        flags=Flags(qr=False, opcode=opcode, rd=True),
        questions=(Question(DnsName.from_text(qname), qtype),),
    )


def two_question_wire(
    qname: str, qtype: int = QType.A, msg_id: int = 0
) -> bytes:
    """Raw wire with QDCOUNT=2 where the second question is a compression
    pointer back to the first question's name (offset 12).

    The :class:`Message` encoder refuses nothing, but a two-question
    query whose second name is *only* a pointer into the question section
    is the classic parser-differential probe — some stacks answer the
    first question, some FORMERR, some drop. Built by hand so the exact
    bytes (including the pointer) are pinned.
    """
    writer = WireWriter()
    writer.write_u16(msg_id)
    writer.write_u16(Flags(qr=False, rd=True).encode())
    writer.write_u16(2)  # QDCOUNT
    writer.write_u16(0)
    writer.write_u16(0)
    writer.write_u16(0)
    DnsName.from_text(qname).encode(writer)
    writer.write_u16(int(qtype))
    writer.write_u16(int(QClass.IN))
    # Second question: pointer to the first qname, different qtype so the
    # two questions are not byte-identical.
    writer.write_u8(0xC0)
    writer.write_u8(FIRST_QNAME_OFFSET)
    writer.write_u16(int(QType.TXT))
    writer.write_u16(int(QClass.IN))
    return writer.getvalue()
