"""A zone-file (master file, RFC 1035 §5) parser.

Supports the subset a measurement tool needs: ``$ORIGIN`` and ``$TTL``
directives, ``;`` comments, ``@`` for the origin, relative and absolute
owner names, owner inheritance from the previous record, optional TTL
and class fields in either order, and the record types the simulator
serves (A, AAAA, TXT with quoted strings, NS, CNAME, PTR, MX, SOA).

Example::

    zone = parse_zone('''
        $ORIGIN example.com.
        $TTL 300
        @        IN SOA ns1 hostmaster 1 3600 600 86400 300
        @        IN NS  ns1
        ns1      IN A   192.0.2.1
        www      IN A   192.0.2.80
                 IN AAAA 2001:db8::80
        alias    IN CNAME www
        txt      IN TXT "hello world" "second string"
    ''')
"""

from __future__ import annotations

import shlex
from typing import Optional

from .enums import QClass, QType
from .name import DnsName, name
from .rr import (
    AAAAData,
    AData,
    CnameData,
    MxData,
    NsData,
    PtrData,
    RData,
    ResourceRecord,
    SoaData,
    TxtData,
)
from .zone import Zone


class ZoneFileError(ValueError):
    """Raised on malformed zone-file input, with a line number."""

    def __init__(self, line_no: int, message: str) -> None:
        super().__init__(f"line {line_no}: {message}")
        self.line_no = line_no


_TYPE_NAMES = {"A", "AAAA", "TXT", "NS", "CNAME", "PTR", "MX", "SOA"}
_CLASS_NAMES = {"IN": QClass.IN, "CH": QClass.CH, "HS": QClass.HS}


def _split(line: str, line_no: int) -> list[str]:
    """Tokenize one line, honouring quotes and ; comments."""
    lexer = shlex.shlex(line, posix=True)
    lexer.whitespace_split = True
    lexer.commenters = ";"
    try:
        return list(lexer)
    except ValueError as exc:
        raise ZoneFileError(line_no, f"bad quoting: {exc}") from exc


def _absolute(text: str, origin: Optional[DnsName], line_no: int) -> DnsName:
    if text == "@":
        if origin is None:
            raise ZoneFileError(line_no, "@ used before $ORIGIN")
        return origin
    if text.endswith("."):
        return name(text)
    if origin is None:
        raise ZoneFileError(line_no, f"relative name {text!r} before $ORIGIN")
    return name(text).concatenate(origin)


def _parse_rdata(
    rtype: str,
    fields: list[str],
    origin: Optional[DnsName],
    line_no: int,
) -> RData:
    def need(count: int) -> None:
        if len(fields) < count:
            raise ZoneFileError(line_no, f"{rtype} needs {count} field(s)")

    if rtype == "A":
        need(1)
        return AData(fields[0])
    if rtype == "AAAA":
        need(1)
        return AAAAData(fields[0])
    if rtype == "TXT":
        need(1)
        return TxtData(tuple(f.encode("utf-8") for f in fields))
    if rtype == "NS":
        need(1)
        return NsData(_absolute(fields[0], origin, line_no))
    if rtype == "CNAME":
        need(1)
        return CnameData(_absolute(fields[0], origin, line_no))
    if rtype == "PTR":
        need(1)
        return PtrData(_absolute(fields[0], origin, line_no))
    if rtype == "MX":
        need(2)
        try:
            preference = int(fields[0])
        except ValueError:
            raise ZoneFileError(line_no, f"bad MX preference {fields[0]!r}") from None
        return MxData(preference, _absolute(fields[1], origin, line_no))
    if rtype == "SOA":
        need(7)
        try:
            numbers = [int(f) for f in fields[2:7]]
        except ValueError:
            raise ZoneFileError(line_no, "SOA numeric fields must be integers") from None
        return SoaData(
            _absolute(fields[0], origin, line_no),
            _absolute(fields[1], origin, line_no),
            *numbers,
        )
    raise ZoneFileError(line_no, f"unsupported type {rtype}")


def parse_zone(text: str, origin: "str | DnsName | None" = None) -> Zone:
    """Parse ``text`` into a :class:`~repro.dnswire.zone.Zone`.

    ``origin`` seeds the origin before any ``$ORIGIN`` directive; the
    zone object is rooted at the first origin seen.
    """
    current_origin: Optional[DnsName] = name(origin) if origin else None
    default_ttl = 300
    zone: Optional[Zone] = None
    previous_owner: Optional[DnsName] = None

    for line_no, raw in enumerate(text.splitlines(), start=1):
        tokens = _split(raw, line_no)
        if not tokens:
            continue

        if tokens[0] == "$ORIGIN":
            if len(tokens) != 2:
                raise ZoneFileError(line_no, "$ORIGIN needs one argument")
            current_origin = name(tokens[1])
            continue
        if tokens[0] == "$TTL":
            if len(tokens) != 2:
                raise ZoneFileError(line_no, "$TTL needs one argument")
            try:
                default_ttl = int(tokens[1])
            except ValueError:
                raise ZoneFileError(line_no, f"bad TTL {tokens[1]!r}") from None
            continue
        if tokens[0].startswith("$"):
            raise ZoneFileError(line_no, f"unknown directive {tokens[0]}")

        # Owner: present unless the raw line starts with whitespace.
        if raw[:1] in (" ", "\t"):
            owner = previous_owner
            if owner is None:
                raise ZoneFileError(line_no, "record with no previous owner")
        else:
            owner = _absolute(tokens[0], current_origin, line_no)
            tokens = tokens[1:]
            if not tokens:
                raise ZoneFileError(line_no, "owner with no record data")
        previous_owner = owner

        # Optional TTL and class, in either order, then the type.
        ttl = default_ttl
        rdclass = QClass.IN
        index = 0
        while index < len(tokens):
            token = tokens[index].upper()
            if token in _TYPE_NAMES:
                break
            if token in _CLASS_NAMES:
                rdclass = _CLASS_NAMES[token]
                index += 1
                continue
            if tokens[index].isdigit():
                ttl = int(tokens[index])
                index += 1
                continue
            break  # an unknown type name; _parse_rdata reports it
        if index >= len(tokens):
            raise ZoneFileError(line_no, "missing record type")
        rtype = tokens[index].upper()
        rdata = _parse_rdata(rtype, tokens[index + 1 :], current_origin, line_no)

        if zone is None:
            if current_origin is None:
                raise ZoneFileError(line_no, "record before any origin")
            zone = Zone(current_origin)
        zone.add(
            ResourceRecord(owner, int(QType[rtype]), int(rdclass), ttl, rdata)
        )

    if zone is None:
        if current_origin is None:
            raise ZoneFileError(0, "empty zone file with no origin")
        zone = Zone(current_origin)
    return zone
