"""DNS protocol constants.

Numeric values follow RFC 1035 and the IANA DNS parameter registry. Only
the subset needed by the reproduction is defined, but each enum tolerates
unknown values: wire decoding never raises on an unassigned code point and
instead preserves the raw integer.
"""

from __future__ import annotations

import enum


class _WireEnum(enum.IntEnum):
    """Base for wire enums: unknown code points decode to a plain int."""

    @classmethod
    def decode(cls, value: int) -> int:
        """Return the enum member for ``value``, or ``value`` itself."""
        try:
            return cls(value)
        except ValueError:
            return value

    @classmethod
    def label(cls, value: int) -> str:
        """Human-readable name for ``value`` (``TYPE123`` style if unknown)."""
        try:
            return cls(value).name
        except ValueError:
            return f"{cls.__name__.upper()}{value}"


class Opcode(_WireEnum):
    """DNS header opcodes (RFC 1035 §4.1.1)."""

    QUERY = 0
    IQUERY = 1
    STATUS = 2
    NOTIFY = 4
    UPDATE = 5


class RCode(_WireEnum):
    """DNS response codes (RFC 1035 §4.1.1, RFC 6895).

    The paper's technique keys on several of these: ``NOTIMP``,
    ``NXDOMAIN``, ``SERVFAIL`` and ``REFUSED`` all appear in Tables 2-3
    and in the transparency analysis of §4.1.2.
    """

    NOERROR = 0
    FORMERR = 1
    SERVFAIL = 2
    NXDOMAIN = 3
    NOTIMP = 4
    REFUSED = 5
    YXDOMAIN = 6
    YXRRSET = 7
    NXRRSET = 8
    NOTAUTH = 9
    NOTZONE = 10
    BADVERS = 16

    @property
    def is_error(self) -> bool:
        return self != RCode.NOERROR


class QType(_WireEnum):
    """Resource record / query types."""

    A = 1
    NS = 2
    CNAME = 5
    SOA = 6
    PTR = 12
    HINFO = 13
    MX = 15
    TXT = 16
    AAAA = 28
    SRV = 33
    OPT = 41
    DS = 43
    RRSIG = 46
    NSEC = 47
    DNSKEY = 48
    ANY = 255
    CAA = 257


class QClass(_WireEnum):
    """Resource record / query classes.

    ``CH`` (CHAOS) matters here: the debugging queries at the heart of the
    paper's methodology — ``id.server``, ``version.bind``,
    ``hostname.bind`` (RFC 4892) — are CHAOS-class TXT queries.
    """

    IN = 1
    CH = 3
    HS = 4
    NONE = 254
    ANY = 255


#: Maximum label length in a DNS name (RFC 1035 §2.3.4).
MAX_LABEL_LENGTH = 63
#: Maximum encoded name length, including the root byte (RFC 1035 §2.3.4).
MAX_NAME_LENGTH = 255
#: Classic maximum UDP payload without EDNS (RFC 1035 §2.3.4).
MAX_UDP_PAYLOAD = 512
#: Standard DNS port.
DNS_PORT = 53
