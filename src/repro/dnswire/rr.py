"""Resource records and RDATA encodings.

Each RDATA kind is a small immutable class with ``encode``/``decode``
methods. Unknown types round-trip through :class:`OpaqueData`, so a
message containing records we do not model still decodes and re-encodes
byte-identically — important when replaying captured interceptor traffic.
"""

from __future__ import annotations

import ipaddress
import struct
from dataclasses import dataclass
from typing import ClassVar, Union

from .enums import QClass, QType
from .wire import WireError, WireReader, WireWriter
from .name import DnsName, name


class RData:
    """Base class for typed RDATA. Subclasses set ``rdtype``."""

    rdtype: ClassVar[int] = 0

    def encode(self, writer: WireWriter) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def to_text(self) -> str:  # pragma: no cover - abstract
        raise NotImplementedError


@dataclass(frozen=True)
class AData(RData):
    """IPv4 address record (type A)."""

    address: ipaddress.IPv4Address
    rdtype: ClassVar[int] = QType.A

    def __post_init__(self) -> None:
        object.__setattr__(self, "address", ipaddress.IPv4Address(self.address))

    def encode(self, writer: WireWriter) -> None:
        writer.write_bytes(self.address.packed)

    @classmethod
    def decode(cls, reader: WireReader, rdlength: int) -> "AData":
        if rdlength != 4:
            raise WireError(f"A rdata must be 4 bytes, got {rdlength}")
        return cls(ipaddress.IPv4Address(reader.read_bytes(4)))

    def to_text(self) -> str:
        return str(self.address)


@dataclass(frozen=True)
class AAAAData(RData):
    """IPv6 address record (type AAAA)."""

    address: ipaddress.IPv6Address
    rdtype: ClassVar[int] = QType.AAAA

    def __post_init__(self) -> None:
        object.__setattr__(self, "address", ipaddress.IPv6Address(self.address))

    def encode(self, writer: WireWriter) -> None:
        writer.write_bytes(self.address.packed)

    @classmethod
    def decode(cls, reader: WireReader, rdlength: int) -> "AAAAData":
        if rdlength != 16:
            raise WireError(f"AAAA rdata must be 16 bytes, got {rdlength}")
        return cls(ipaddress.IPv6Address(reader.read_bytes(16)))

    def to_text(self) -> str:
        return str(self.address)


@dataclass(frozen=True)
class TxtData(RData):
    """TXT record: a tuple of character-strings.

    Location-query answers (Table 1) and ``version.bind`` answers are all
    TXT records, so this is the single most-used RDATA type in the
    reproduction.
    """

    strings: tuple[bytes, ...]
    rdtype: ClassVar[int] = QType.TXT

    @classmethod
    def from_text(cls, *texts: str) -> "TxtData":
        return cls(tuple(t.encode("utf-8") for t in texts))

    def encode(self, writer: WireWriter) -> None:
        for chunk in self.strings:
            if len(chunk) > 255:
                raise WireError("TXT character-string exceeds 255 bytes")
            writer.write_u8(len(chunk))
            writer.write_bytes(chunk)

    @classmethod
    def decode(cls, reader: WireReader, rdlength: int) -> "TxtData":
        end = reader.offset + rdlength
        strings: list[bytes] = []
        while reader.offset < end:
            length = reader.read_u8()
            strings.append(reader.read_bytes(length))
        if reader.offset != end:
            raise WireError("TXT rdata overran its rdlength")
        return cls(tuple(strings))

    def to_text(self) -> str:
        return " ".join(
            '"' + chunk.decode("utf-8", "replace") + '"' for chunk in self.strings
        )

    @property
    def joined(self) -> str:
        """All character-strings concatenated and decoded; the usual view."""
        return b"".join(self.strings).decode("utf-8", "replace")


@dataclass(frozen=True)
class NameData(RData):
    """Base for RDATA that is a single domain name (NS, CNAME, PTR)."""

    target: DnsName

    def __post_init__(self) -> None:
        object.__setattr__(self, "target", name(self.target))

    def encode(self, writer: WireWriter) -> None:
        # Names inside RDATA are written uncompressed so that rdlength
        # never depends on compression context (matches modern practice
        # and RFC 3597's rule for unknown types).
        self.target.encode(writer, compress=False)

    @classmethod
    def decode(cls, reader: WireReader, rdlength: int) -> "NameData":
        return cls(DnsName.decode(reader))

    def to_text(self) -> str:
        return self.target.to_text()


@dataclass(frozen=True)
class NsData(NameData):
    rdtype: ClassVar[int] = QType.NS


@dataclass(frozen=True)
class CnameData(NameData):
    rdtype: ClassVar[int] = QType.CNAME


@dataclass(frozen=True)
class PtrData(NameData):
    rdtype: ClassVar[int] = QType.PTR


@dataclass(frozen=True)
class SoaData(RData):
    """Start-of-authority record."""

    mname: DnsName
    rname: DnsName
    serial: int = 1
    refresh: int = 3600
    retry: int = 600
    expire: int = 86400
    minimum: int = 300
    rdtype: ClassVar[int] = QType.SOA

    def __post_init__(self) -> None:
        object.__setattr__(self, "mname", name(self.mname))
        object.__setattr__(self, "rname", name(self.rname))

    def encode(self, writer: WireWriter) -> None:
        self.mname.encode(writer, compress=False)
        self.rname.encode(writer, compress=False)
        writer.write_u32(self.serial)
        writer.write_u32(self.refresh)
        writer.write_u32(self.retry)
        writer.write_u32(self.expire)
        writer.write_u32(self.minimum)

    @classmethod
    def decode(cls, reader: WireReader, rdlength: int) -> "SoaData":
        mname = DnsName.decode(reader)
        rname = DnsName.decode(reader)
        return cls(
            mname,
            rname,
            serial=reader.read_u32(),
            refresh=reader.read_u32(),
            retry=reader.read_u32(),
            expire=reader.read_u32(),
            minimum=reader.read_u32(),
        )

    def to_text(self) -> str:
        return (
            f"{self.mname.to_text()} {self.rname.to_text()} {self.serial} "
            f"{self.refresh} {self.retry} {self.expire} {self.minimum}"
        )


@dataclass(frozen=True)
class MxData(RData):
    """Mail-exchanger record."""

    preference: int
    exchange: DnsName
    rdtype: ClassVar[int] = QType.MX

    def __post_init__(self) -> None:
        object.__setattr__(self, "exchange", name(self.exchange))

    def encode(self, writer: WireWriter) -> None:
        writer.write_u16(self.preference)
        self.exchange.encode(writer, compress=False)

    @classmethod
    def decode(cls, reader: WireReader, rdlength: int) -> "MxData":
        preference = reader.read_u16()
        return cls(preference, DnsName.decode(reader))

    def to_text(self) -> str:
        return f"{self.preference} {self.exchange.to_text()}"


@dataclass(frozen=True)
class OpaqueData(RData):
    """Catch-all for types we do not model; preserves raw bytes."""

    raw: bytes
    type_code: int = 0

    @property
    def rdtype(self) -> int:  # type: ignore[override]
        return self.type_code

    def encode(self, writer: WireWriter) -> None:
        writer.write_bytes(self.raw)

    @classmethod
    def decode(cls, reader: WireReader, rdlength: int, type_code: int) -> "OpaqueData":
        return cls(reader.read_bytes(rdlength), type_code)

    def to_text(self) -> str:
        return "\\# " + str(len(self.raw)) + " " + self.raw.hex()


_RDATA_DECODERS = {
    QType.A: AData.decode,
    QType.AAAA: AAAAData.decode,
    QType.TXT: TxtData.decode,
    QType.NS: NsData.decode,
    QType.CNAME: CnameData.decode,
    QType.PTR: PtrData.decode,
    QType.SOA: SoaData.decode,
    QType.MX: MxData.decode,
}

AnyRData = Union[
    AData, AAAAData, TxtData, NsData, CnameData, PtrData, SoaData, MxData, OpaqueData
]


@dataclass(frozen=True)
class ResourceRecord:
    """A complete resource record: owner name, type, class, TTL, RDATA."""

    name: DnsName
    rdtype: int
    rdclass: int
    ttl: int
    rdata: RData

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", name(self.name))

    def encode(self, writer: WireWriter) -> None:
        self.name.encode(writer)
        writer.write_u16(int(self.rdtype))
        writer.write_u16(int(self.rdclass))
        writer.write_u32(self.ttl)
        # Write a zero rdlength placeholder, encode the RDATA in place,
        # then patch the real length in — no scratch writer, no copy.
        # Name remembering is paused so RDATA-internal names (always
        # uncompressed) stay invisible to the message's compression map,
        # exactly as when they were encoded into a throwaway buffer.
        length_at = writer.offset
        writer.write_u16(0)
        prior = writer.pause_names()
        try:
            self.rdata.encode(writer)
        finally:
            writer.resume_names(prior)
        rdlength = writer.offset - length_at - 2
        writer.patch_u16(length_at, rdlength)

    @classmethod
    def decode(cls, reader: WireReader) -> "ResourceRecord":
        owner = DnsName.decode(reader)
        rdtype = QType.decode(reader.read_u16())
        rdclass = QClass.decode(reader.read_u16())
        ttl = reader.read_u32()
        rdlength = reader.read_u16()
        end = reader.offset + rdlength
        decoder = _RDATA_DECODERS.get(rdtype)
        try:
            if decoder is None:
                rdata: RData = OpaqueData.decode(reader, rdlength, int(rdtype))
            else:
                rdata = decoder(reader, rdlength)
        except WireError:
            raise
        except (ValueError, OverflowError, struct.error) as exc:
            # A hostile RDATA payload must surface as WireError — the one
            # exception family ``decode_or_none`` treats as "no usable
            # response" — not as whatever ``ipaddress``/``struct``/codec
            # internals happen to raise on junk bytes.
            raise WireError(
                f"malformed {QType.label(rdtype)} rdata: {exc}"
            ) from exc
        if reader.offset != end:
            raise WireError(
                f"rdata decode for type {rdtype} consumed "
                f"{reader.offset - (end - rdlength)} of {rdlength} bytes"
            )
        return cls(owner, rdtype, rdclass, ttl, rdata)

    def to_text(self) -> str:
        return (
            f"{self.name.to_text()} {self.ttl} {QClass.label(self.rdclass)} "
            f"{QType.label(self.rdtype)} {self.rdata.to_text()}"
        )


def txt_record(
    owner: "str | DnsName",
    *strings: str,
    rdclass: int = QClass.IN,
    ttl: int = 0,
) -> ResourceRecord:
    """Convenience constructor for the TXT records this project lives on."""
    return ResourceRecord(name(owner), QType.TXT, rdclass, ttl, TxtData.from_text(*strings))


def a_record(owner: "str | DnsName", address: str, ttl: int = 60) -> ResourceRecord:
    return ResourceRecord(
        name(owner), QType.A, QClass.IN, ttl, AData(ipaddress.IPv4Address(address))
    )


def aaaa_record(owner: "str | DnsName", address: str, ttl: int = 60) -> ResourceRecord:
    return ResourceRecord(
        name(owner), QType.AAAA, QClass.IN, ttl, AAAAData(ipaddress.IPv6Address(address))
    )
