"""``repro serve`` — a read-only HTTP API over one result store.

Stdlib only (:mod:`http.server`): the store directory is the database,
an in-memory :class:`~repro.campaigns.StoreAggregator` is the query
layer, and every response is the same canonical JSON the offline CLI
writes — ``curl …/trend`` and ``repro campaign trend`` are comparable
with ``cmp``, byte for byte.

The server is safe to point at a store a campaign is still appending
to: each request refreshes the aggregator through
:func:`~repro.store.read_journal_tail`, which only ever consumes byte
ranges ending in a newline — a partially-flushed final line is left for
the next refresh, so responses always reflect whole fsync'd segments
and never a torn row. Mid-file journal damage surfaces as **503** with
the offending shard named, matching ``repro results``' one-line error;
the server itself stays up.

Endpoints (all GET):

- ``/``                  — endpoint index
- ``/manifest``          — the store manifest
- ``/epochs``            — brief per-epoch index (measured/complete)
- ``/epochs/<n>``        — one epoch's full aggregation table
- ``/trend``             — every epoch table plus per-metric series
- ``/probes?epoch=N&offset=0&limit=50`` — probe-level drill-down
"""

from __future__ import annotations

import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlparse

from repro.campaigns.aggregate import (
    StoreAggregator,
    canonical_json,
    load_epoch_page,
)
from repro.store import StoreError, load_manifest

_EPOCH_ROUTE = re.compile(r"^/epochs/(\d+)$")

ENDPOINTS = {
    "/": "this index",
    "/manifest": "the store manifest",
    "/epochs": "per-epoch index (measured/complete)",
    "/epochs/<n>": "one epoch's aggregation table",
    "/trend": "all epoch tables plus per-metric series",
    "/probes?epoch=N&offset=0&limit=50": "probe-level drill-down",
}


class _BadRequest(Exception):
    """Maps to 400 with the message in the body."""


def _int_param(params: dict, name: str, default: int) -> int:
    values = params.get(name)
    if not values:
        return default
    try:
        return int(values[-1])
    except ValueError:
        raise _BadRequest(f"{name} must be an integer, got {values[-1]!r}")


class _StoreRequestHandler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"
    #: Set by StoreServer on the handler class.
    store_path: str = ""
    aggregator: Optional[StoreAggregator] = None
    refresh_lock: threading.Lock = threading.Lock()

    # -- plumbing -----------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # request logging off — tests and CI want quiet servers

    def _reply(self, status: int, payload) -> None:
        body = canonical_json(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        self.wfile.write(body)

    def _refresh(self) -> StoreAggregator:
        aggregator = type(self).aggregator
        assert aggregator is not None
        # One refresh at a time: the aggregator's cursor/counters are
        # shared across the threading server's request threads.
        with type(self).refresh_lock:
            aggregator.refresh()
        return aggregator

    # -- routing ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        url = urlparse(self.path)
        try:
            self._route(url.path, parse_qs(url.query))
        except _BadRequest as exc:
            self._reply(400, {"error": str(exc)})
        except (StoreError, OSError) as exc:
            # Damaged or vanished store: the server survives, the
            # response names the problem (e.g. the corrupt shard).
            self._reply(503, {"error": str(exc)})
        except BrokenPipeError:  # pragma: no cover - client went away
            pass

    def _route(self, path: str, params: dict) -> None:
        if path == "/":
            self._reply(200, {"store": type(self).store_path, "endpoints": ENDPOINTS})
            return
        if path == "/manifest":
            self._reply(200, load_manifest(type(self).store_path))
            return
        if path == "/trend":
            self._reply(200, self._refresh().trend())
            return
        if path == "/epochs":
            aggregator = self._refresh()
            tables = [
                aggregator.epoch_table(epoch)
                for epoch in range(aggregator.epoch_count())
            ]
            self._reply(
                200,
                {
                    "epochs": [
                        {
                            "epoch": table["epoch"],
                            "fleet_size": table["fleet_size"],
                            "measured": table["measured"],
                            "complete": table["complete"],
                        }
                        for table in tables
                    ]
                },
            )
            return
        match = _EPOCH_ROUTE.match(path)
        if match:
            aggregator = self._refresh()
            epoch = int(match.group(1))
            if not 0 <= epoch < aggregator.epoch_count():
                self._reply(404, {"error": f"no such epoch: {epoch}"})
                return
            self._reply(200, aggregator.epoch_table(epoch))
            return
        if path == "/probes":
            epoch = _int_param(params, "epoch", 0)
            offset = _int_param(params, "offset", 0)
            limit = _int_param(params, "limit", 50)
            if offset < 0 or not 1 <= limit <= 1000:
                raise _BadRequest("offset must be >= 0 and limit in [1, 1000]")
            self._reply(
                200, load_epoch_page(type(self).store_path, epoch, offset, limit)
            )
            return
        self._reply(404, {"error": f"unknown path: {path}", "endpoints": ENDPOINTS})


class StoreServer:
    """The serve runtime: one store directory, one HTTP listener.

    ``port=0`` binds an ephemeral port (tests); :attr:`address` reports
    the bound ``(host, port)``. Use as a context manager or call
    :meth:`serve_forever` (blocking) / :meth:`start` (background
    thread, for tests) and :meth:`close`.
    """

    def __init__(self, store_path: str, host: str = "127.0.0.1", port: int = 0):
        self.store_path = store_path
        handler = type(
            "BoundStoreRequestHandler",
            (_StoreRequestHandler,),
            {
                "store_path": store_path,
                "aggregator": StoreAggregator(store_path, persist=False),
                "refresh_lock": threading.Lock(),
            },
        )
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def serve_forever(self) -> None:
        self._httpd.serve_forever()

    def start(self) -> "StoreServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "StoreServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()


def serve_store(store_path: str, host: str = "127.0.0.1", port: int = 8737) -> None:
    """Blocking entry point for ``repro serve``."""
    server = StoreServer(store_path, host=host, port=port)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        server.close()


__all__ = ["ENDPOINTS", "StoreServer", "serve_store"]
