"""``repro.serve`` — the read-only HTTP API over a result store.

See :mod:`repro.serve.app`; stdlib ``http.server`` only, canonical-JSON
responses byte-identical to the offline aggregation CLI, live-appender
safe, 503 on a damaged store.
"""

from .app import ENDPOINTS, StoreServer, serve_store

__all__ = ["ENDPOINTS", "StoreServer", "serve_store"]
