"""The network simulator core: nodes, links, and the event loop.

The simulator is a discrete-event system with a millisecond clock. Nodes
exchange immutable :class:`~repro.net.packet.Packet` objects over links
with configurable latency. Forwarding decisions live in the nodes
themselves (hosts, routers, CPE, middleboxes); the network only moves
packets between adjacent nodes and keeps time.

Determinism: given the same topology and the same sequence of
``send``/``run`` calls, the event order is fully reproducible (ties in
the event queue are broken by a sequence number, never by object ids).
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Callable, Optional

from .addr import IPAddress, parse_ip
from .packet import Packet
from .trace import TraceRecorder

#: Default one-way link latency in milliseconds.
DEFAULT_LATENCY_MS = 1.0
#: Hard cap on events per ``run`` call; a loop guard, not a tuning knob.
MAX_EVENTS_PER_RUN = 1_000_000


class SimulationError(RuntimeError):
    """Raised on topology or event-loop misuse."""


def _drop_reason(detail: str) -> str:
    """Collapse a free-form drop detail into a low-cardinality metric
    label: digits stripped (port numbers vary per probe), spaces dashed.
    Only runs when metrics are enabled, and only on the drop path."""
    reason = "".join(c for c in detail if not c.isdigit())
    reason = reason.replace(":", "").strip().replace(" ", "-")
    return reason or "unspecified"


class Node:
    """Base class for everything attached to the network."""

    def __init__(self, name: str, asn: Optional[int] = None) -> None:
        self.name = name
        self.asn = asn
        self.network: Optional["Network"] = None

    # -- wiring -----------------------------------------------------------

    def attached(self, network: "Network") -> None:
        """Called when the node joins a network."""
        self.network = network

    def addresses(self) -> set[IPAddress]:
        """Addresses owned by this node (local delivery targets)."""
        return set()

    # -- packet handling ----------------------------------------------------

    def receive(self, packet: Packet) -> None:
        """Entry point for a packet arriving at this node."""
        if packet.dst in self.addresses():
            self.deliver_local(packet)
        else:
            self.forward(packet)

    def deliver_local(self, packet: Packet) -> None:
        """Handle a packet addressed to this node. Default: drop."""
        self.trace("drop", packet, "no local handler")

    def forward(self, packet: Packet) -> None:
        """Handle a transit packet. Default: drop (end hosts don't route)."""
        self.trace("drop", packet, "not a router")

    # -- helpers -------------------------------------------------------------

    def send(self, next_hop: str, packet: Packet) -> None:
        """Hand ``packet`` to the adjacent node ``next_hop``."""
        if self.network is None:
            raise SimulationError(f"{self.name} is not attached to a network")
        self.network.transmit(self.name, next_hop, packet)

    def trace(self, action: str, packet: Packet, detail: str = "") -> None:
        if self.network is not None:
            if action == "drop" and self.network.metrics.enabled:
                self.network.metrics.inc("sim.drops." + _drop_reason(detail))
            self.network.recorder.record(
                self.network.now, self.name, action, packet, detail
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class Network:
    """Node registry, link table and discrete-event loop."""

    def __init__(self, trace: bool = False, loss_seed: int = 0) -> None:
        # Imported lazily: repro.core pulls in the measurement stack,
        # which imports repro.net — a cycle at module-import time, but
        # not by the time a Network is actually constructed.
        from repro.core.metrics import active_registry

        #: The metrics registry this network reports into, captured at
        #: construction (see :func:`repro.core.metrics.use_registry`).
        #: Defaults to the no-op registry: the hot path pays one empty
        #: method call per hook when instrumentation is off.
        self.metrics = active_registry()
        self.nodes: dict[str, Node] = {}
        self._links: dict[tuple[str, str], float] = {}
        self._link_loss: dict[tuple[str, str], float] = {}
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self.now = 0.0
        self.recorder = TraceRecorder(enabled=trace)
        self._address_index: dict[IPAddress, str] = {}
        #: Deterministic randomness for link-loss decisions only.
        self.loss_rng = random.Random(loss_seed)

    # -- topology -----------------------------------------------------------

    def add_node(self, node: Node) -> Node:
        if node.name in self.nodes:
            raise SimulationError(f"duplicate node name: {node.name}")
        self.nodes[node.name] = node
        node.attached(self)
        for address in node.addresses():
            self._address_index[address] = node.name
        return node

    def reindex(self, node: Node) -> None:
        """Refresh the address index after a node gains addresses."""
        for address in node.addresses():
            self._address_index[address] = node.name

    def node_for_address(self, address: "str | IPAddress") -> Optional[Node]:
        name = self._address_index.get(parse_ip(address))
        return self.nodes.get(name) if name else None

    def connect(
        self,
        a: str,
        b: str,
        latency_ms: float = DEFAULT_LATENCY_MS,
        loss: float = 0.0,
    ) -> None:
        """Create a bidirectional link between nodes ``a`` and ``b``.

        ``loss`` is the per-packet drop probability on the link (both
        directions), decided by the network's seeded ``loss_rng`` so runs
        stay reproducible. Use it for failure-injection experiments.
        """
        for name in (a, b):
            if name not in self.nodes:
                raise SimulationError(f"unknown node: {name}")
        if not 0.0 <= loss < 1.0:
            raise SimulationError(f"loss must be in [0, 1): {loss}")
        self._links[(a, b)] = latency_ms
        self._links[(b, a)] = latency_ms
        if loss:
            self._link_loss[(a, b)] = loss
            self._link_loss[(b, a)] = loss

    def set_link_loss(self, a: str, b: str, loss: float) -> None:
        """Adjust a link's loss rate after creation (failure injection)."""
        if (a, b) not in self._links:
            raise SimulationError(f"no link {a} <-> {b}")
        for key in ((a, b), (b, a)):
            if loss:
                self._link_loss[key] = loss
            else:
                self._link_loss.pop(key, None)

    def are_connected(self, a: str, b: str) -> bool:
        return (a, b) in self._links

    def neighbors(self, name: str) -> list[str]:
        return sorted(b for (a, b) in self._links if a == name)

    def latency(self, a: str, b: str) -> float:
        try:
            return self._links[(a, b)]
        except KeyError:
            raise SimulationError(f"no link {a} <-> {b}") from None

    # -- event loop ---------------------------------------------------------

    def schedule(self, delay_ms: float, action: Callable[[], None]) -> None:
        if delay_ms < 0:
            raise SimulationError(f"negative delay: {delay_ms}")
        heapq.heappush(self._queue, (self.now + delay_ms, next(self._seq), action))

    def transmit(self, sender: str, receiver: str, packet: Packet) -> None:
        """Move ``packet`` from ``sender`` to adjacent ``receiver``."""
        latency = self.latency(sender, receiver)
        loss = self._link_loss.get((sender, receiver), 0.0)
        if loss and self.loss_rng.random() < loss:
            self.metrics.inc("sim.drops.link-loss")
            self.recorder.record(
                self.now, sender, "drop", packet, f"link loss -> {receiver}"
            )
            return
        self.metrics.inc("sim.link_transits")
        self.recorder.record(self.now, sender, "send", packet, f"-> {receiver}")
        node = self.nodes[receiver]
        self.schedule(latency, lambda: node.receive(packet))

    def inject(self, at: str, packet: Packet, delay_ms: float = 0.0) -> None:
        """Deliver ``packet`` directly to node ``at`` (test/measurement hook)."""
        node = self.nodes[at]
        self.schedule(delay_ms, lambda: node.receive(packet))

    def run(self, until: Optional[float] = None) -> int:
        """Process events (up to simulated time ``until``); return count."""
        processed = 0
        while self._queue:
            time, _seq, action = self._queue[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._queue)
            self.now = max(self.now, time)
            action()
            processed += 1
            if processed > MAX_EVENTS_PER_RUN:
                raise SimulationError("event-loop runaway (routing loop?)")
        if until is not None and until > self.now:
            self.now = until
        if processed:
            self.metrics.inc("sim.events_dispatched", processed)
        return processed

    def run_until_idle(self) -> int:
        return self.run()

    @property
    def pending_events(self) -> int:
        return len(self._queue)
