"""The network simulator core: nodes, links, and the event loop.

The simulator is a discrete-event system with a millisecond clock. Nodes
exchange immutable :class:`~repro.net.packet.Packet` objects over links
with configurable latency. Forwarding decisions live in the nodes
themselves (hosts, routers, CPE, middleboxes); the network only moves
packets between adjacent nodes and keeps time.

Determinism: given the same topology and the same sequence of
``send``/``run`` calls, the event order is fully reproducible (ties in
the event queue are broken by a sequence number, never by object ids).
"""

from __future__ import annotations

import heapq
import itertools
import random
import warnings
from typing import Callable, Optional

from .addr import IPAddress, parse_ip
from .impairment import (
    ImpairedLink,
    LinkProfile,
    duplicate_spacing_ms,
    link_stream,
    truncate_cut,
)
from .packet import Packet
from .trace import TraceRecorder

#: Default one-way link latency in milliseconds.
DEFAULT_LATENCY_MS = 1.0
#: Hard cap on events per ``run`` call; a loop guard, not a tuning knob.
MAX_EVENTS_PER_RUN = 1_000_000


class SimulationError(RuntimeError):
    """Raised on topology or event-loop misuse."""


def _drop_reason(detail: str) -> str:
    """Collapse a free-form drop detail into a low-cardinality metric
    label: digits stripped (port numbers vary per probe), spaces dashed.
    Only runs when metrics are enabled, and only on the drop path."""
    reason = "".join(c for c in detail if not c.isdigit())
    reason = reason.replace(":", "").strip().replace(" ", "-")
    return reason or "unspecified"


class Node:
    """Base class for everything attached to the network."""

    def __init__(self, name: str, asn: Optional[int] = None) -> None:
        self.name = name
        self.asn = asn
        self.network: Optional["Network"] = None

    # -- wiring -----------------------------------------------------------

    def attached(self, network: "Network") -> None:
        """Called when the node joins a network."""
        self.network = network

    def addresses(self) -> set[IPAddress]:
        """Addresses owned by this node (local delivery targets)."""
        return set()

    # -- packet handling ----------------------------------------------------

    def receive(self, packet: Packet) -> None:
        """Entry point for a packet arriving at this node."""
        if packet.dst in self.addresses():
            self.deliver_local(packet)
        else:
            self.forward(packet)

    def deliver_local(self, packet: Packet) -> None:
        """Handle a packet addressed to this node. Default: drop."""
        self.trace("drop", packet, "no local handler")

    def forward(self, packet: Packet) -> None:
        """Handle a transit packet. Default: drop (end hosts don't route)."""
        self.trace("drop", packet, "not a router")

    # -- helpers -------------------------------------------------------------

    def send(self, next_hop: str, packet: Packet) -> None:
        """Hand ``packet`` to the adjacent node ``next_hop``."""
        if self.network is None:
            raise SimulationError(f"{self.name} is not attached to a network")
        self.network.transmit(self.name, next_hop, packet)

    def trace(self, action: str, packet: Packet, detail: str = "") -> None:
        if self.network is not None:
            if action == "drop" and self.network.metrics.enabled:
                self.network.metrics.inc("sim.drops." + _drop_reason(detail))
            self.network.recorder.record(
                self.network.now, self.name, action, packet, detail
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class Network:
    """Node registry, link table and discrete-event loop."""

    def __init__(
        self,
        trace: bool = False,
        loss_seed: "int | str" = 0,
        impairment: Optional[LinkProfile] = None,
    ) -> None:
        # Imported lazily: repro.core pulls in the measurement stack,
        # which imports repro.net — a cycle at module-import time, but
        # not by the time a Network is actually constructed.
        from repro.core.metrics import active_registry

        #: The metrics registry this network reports into, captured at
        #: construction (see :func:`repro.core.metrics.use_registry`).
        #: Defaults to the no-op registry: the hot path pays one empty
        #: method call per hook when instrumentation is off.
        self.metrics = active_registry()
        self.nodes: dict[str, Node] = {}
        self._links: dict[tuple[str, str], float] = {}
        #: Per-direction impairment state; empty on unimpaired networks,
        #: so the ``transmit`` fast path is one falsy-dict check.
        self._impaired: dict[tuple[str, str], ImpairedLink] = {}
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self.now = 0.0
        self.recorder = TraceRecorder(enabled=trace)
        self._address_index: dict[IPAddress, str] = {}
        #: Deterministic randomness for link impairments: legacy
        #: loss-shim links draw from it directly; profile-API links
        #: derive their own per-direction streams from it at install
        #: time (see :mod:`repro.net.impairment`).
        self.loss_rng = random.Random(loss_seed)
        if impairment is not None and not isinstance(impairment, LinkProfile):
            raise SimulationError(
                f"impairment must be a LinkProfile, got {type(impairment).__name__}"
            )
        #: Network-wide default profile applied by ``connect`` when no
        #: per-link profile is given.
        self.default_impairment = impairment

    # -- topology -----------------------------------------------------------

    def add_node(self, node: Node) -> Node:
        if node.name in self.nodes:
            raise SimulationError(f"duplicate node name: {node.name}")
        self.nodes[node.name] = node
        node.attached(self)
        for address in node.addresses():
            self._address_index[address] = node.name
        return node

    def reindex(self, node: Node) -> None:
        """Refresh the address index after a node gains addresses."""
        for address in node.addresses():
            self._address_index[address] = node.name

    def node_for_address(self, address: "str | IPAddress") -> Optional[Node]:
        name = self._address_index.get(parse_ip(address))
        return self.nodes.get(name) if name else None

    def connect(
        self,
        a: str,
        b: str,
        latency_ms: float = DEFAULT_LATENCY_MS,
        loss: "float | None" = None,
        profile: Optional[LinkProfile] = None,
    ) -> None:
        """Create a bidirectional link between nodes ``a`` and ``b``.

        ``profile`` attaches a :class:`LinkProfile` (loss, duplication,
        reordering, jitter, corruption, truncation) to both directions;
        when omitted, the network-wide default passed to
        ``Network(impairment=...)`` applies. Each direction gets its own
        RNG stream derived from the network's seeded ``loss_rng`` so
        runs stay reproducible.

        ``loss`` is deprecated: use ``profile=LinkProfile(loss=...)``.
        """
        for name in (a, b):
            if name not in self.nodes:
                raise SimulationError(f"unknown node: {name}")
        self._links[(a, b)] = latency_ms
        self._links[(b, a)] = latency_ms
        if loss is not None:
            if profile is not None:
                raise SimulationError("pass either loss= or profile=, not both")
            warnings.warn(
                "Network.connect(loss=...) is deprecated; use "
                "connect(profile=LinkProfile(loss=...))",
                DeprecationWarning,
                stacklevel=2,
            )
            self._install_legacy_loss(a, b, loss)
            return
        effective = profile if profile is not None else self.default_impairment
        if effective is not None:
            self._install_profile(a, b, effective)

    def set_link_profile(
        self, a: str, b: str, profile: Optional[LinkProfile]
    ) -> None:
        """Attach ``profile`` to an existing link (both directions), or
        clear its impairments with ``None``. Fault injection after
        topology build — the profile-API successor to ``set_link_loss``.
        """
        if (a, b) not in self._links:
            raise SimulationError(f"no link {a} <-> {b}")
        if profile is None:
            self._impaired.pop((a, b), None)
            self._impaired.pop((b, a), None)
            return
        if not isinstance(profile, LinkProfile):
            raise SimulationError(
                f"profile must be a LinkProfile, got {type(profile).__name__}"
            )
        self._install_profile(a, b, profile)

    def link_profile(self, a: str, b: str) -> Optional[LinkProfile]:
        """The profile active on link direction ``a -> b``, if any."""
        state = self._impaired.get((a, b))
        return None if state is None else state.profile

    def set_link_loss(self, a: str, b: str, loss: float) -> None:
        """Deprecated: use :meth:`set_link_profile` with a loss-only
        :class:`LinkProfile`. Kept as a shim for existing callers."""
        warnings.warn(
            "Network.set_link_loss is deprecated; use "
            "set_link_profile(a, b, LinkProfile(loss=...))",
            DeprecationWarning,
            stacklevel=2,
        )
        if (a, b) not in self._links:
            raise SimulationError(f"no link {a} <-> {b}")
        self._install_legacy_loss(a, b, loss)

    def _install_legacy_loss(self, a: str, b: str, loss: float) -> None:
        """Loss-only shim semantics: validate like the old API and keep
        drawing from the shared ``loss_rng`` at transmit time (tests
        exist that reseed or replace that RNG after configuring loss)."""
        if not 0.0 <= loss < 1.0:
            raise SimulationError(f"loss must be in [0, 1): {loss}")
        if not loss:
            self._impaired.pop((a, b), None)
            self._impaired.pop((b, a), None)
            return
        profile = LinkProfile(loss=loss)
        self._impaired[(a, b)] = ImpairedLink(profile, None)
        self._impaired[(b, a)] = ImpairedLink(profile, None)

    def _install_profile(self, a: str, b: str, profile: LinkProfile) -> None:
        """Install ``profile`` on both directions with dedicated RNG
        streams. The seed token is drawn from ``loss_rng`` once per
        install, so distinct links (and distinct ``loss_seed`` values)
        get independent, reproducible impairment schedules."""
        token = self.loss_rng.getrandbits(64)
        for sender, receiver in ((a, b), (b, a)):
            self._impaired[(sender, receiver)] = ImpairedLink(
                profile, link_stream(token, sender, receiver)
            )

    def are_connected(self, a: str, b: str) -> bool:
        return (a, b) in self._links

    def neighbors(self, name: str) -> list[str]:
        return sorted(b for (a, b) in self._links if a == name)

    def latency(self, a: str, b: str) -> float:
        try:
            return self._links[(a, b)]
        except KeyError:
            raise SimulationError(f"no link {a} <-> {b}") from None

    # -- event loop ---------------------------------------------------------

    def schedule(self, delay_ms: float, action: Callable[[], None]) -> None:
        if delay_ms < 0:
            raise SimulationError(f"negative delay: {delay_ms}")
        heapq.heappush(self._queue, (self.now + delay_ms, next(self._seq), action))

    def transmit(self, sender: str, receiver: str, packet: Packet) -> None:
        """Move ``packet`` from ``sender`` to adjacent ``receiver``."""
        latency = self.latency(sender, receiver)
        if self._impaired:
            state = self._impaired.get((sender, receiver))
            if state is not None and state.active:
                self._transmit_impaired(sender, receiver, packet, latency, state)
                return
        self.metrics.inc("sim.link_transits")
        self.recorder.record(self.now, sender, "send", packet, f"-> {receiver}")
        node = self.nodes[receiver]
        self.schedule(latency, lambda: node.receive(packet))

    def _transmit_impaired(
        self,
        sender: str,
        receiver: str,
        packet: Packet,
        latency: float,
        state: ImpairedLink,
    ) -> None:
        """Apply ``state.profile`` to one transmission.

        Draw order is fixed — loss, corrupt, truncate, duplicate, then
        per-copy jitter and reorder — and a draw only happens when the
        corresponding rate is non-zero, so each link's RNG stream is a
        stable function of the traffic that crossed it (the determinism
        contract in :mod:`repro.net.impairment`).
        """
        profile = state.profile
        rng = state.rng if state.rng is not None else self.loss_rng
        if profile.loss and rng.random() < profile.loss:
            self.metrics.inc("net.impair.dropped")
            self.metrics.inc("sim.drops.link-loss")
            self.recorder.record(
                self.now, sender, "drop", packet, f"link loss -> {receiver}"
            )
            return
        if profile.corrupt and rng.random() < profile.corrupt:
            # Bit damage fails the receiver's UDP checksum, so a
            # corrupted datagram is a drop counted under its own name.
            self.metrics.inc("net.impair.corrupted")
            self.recorder.record(
                self.now, sender, "drop", packet, f"corrupted -> {receiver}"
            )
            return
        if (
            profile.truncate
            and packet.udp is not None
            and packet.udp.payload
            and rng.random() < profile.truncate
        ):
            packet = packet.truncated(truncate_cut(rng, len(packet.udp.payload)))
            self.metrics.inc("net.impair.truncated")
            self.recorder.record(
                self.now, sender, "mangle", packet, f"truncated -> {receiver}"
            )
        copies = 1
        if profile.duplicate and rng.random() < profile.duplicate:
            copies = 2
            self.metrics.inc("net.impair.duplicated")
        node = self.nodes[receiver]
        for copy_index in range(copies):
            delay = latency + copy_index * duplicate_spacing_ms()
            if profile.jitter_ms:
                delay += profile.draw_jitter(rng)
            if profile.reorder and rng.random() < profile.reorder:
                delay += rng.uniform(0.0, profile.reorder_window_ms)
                self.metrics.inc("net.impair.reordered")
            self.metrics.inc("sim.link_transits")
            detail = f"-> {receiver}" + (" (dup)" if copy_index else "")
            self.recorder.record(self.now, sender, "send", packet, detail)
            self.schedule(delay, lambda p=packet: node.receive(p))

    def inject(self, at: str, packet: Packet, delay_ms: float = 0.0) -> None:
        """Deliver ``packet`` directly to node ``at`` (test/measurement hook)."""
        node = self.nodes[at]
        self.schedule(delay_ms, lambda: node.receive(packet))

    def run(self, until: Optional[float] = None) -> int:
        """Process events (up to simulated time ``until``); return count."""
        processed = 0
        while self._queue:
            time, _seq, action = self._queue[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._queue)
            self.now = max(self.now, time)
            action()
            processed += 1
            if processed > MAX_EVENTS_PER_RUN:
                raise SimulationError("event-loop runaway (routing loop?)")
        if until is not None and until > self.now:
            self.now = until
        if processed:
            self.metrics.inc("sim.events_dispatched", processed)
        return processed

    def run_until_idle(self) -> int:
        return self.run()

    @property
    def pending_events(self) -> int:
        return len(self._queue)
