"""The network simulator core: nodes, links, and the event loop.

The simulator is a discrete-event system with a millisecond clock. Nodes
exchange immutable :class:`~repro.net.packet.Packet` objects over links
with configurable latency. Forwarding decisions live in the nodes
themselves (hosts, routers, CPE, middleboxes); the network only moves
packets between adjacent nodes and keeps time.

Determinism: given the same topology and the same sequence of
``send``/``run`` calls, the event order is fully reproducible (ties in
the event queue are broken by a sequence number, never by object ids).
"""

from __future__ import annotations

import itertools
import math
import random
import warnings
from typing import Callable, Optional

from .addr import IPAddress, parse_ip
from .impairment import (
    ImpairedLink,
    LinkProfile,
    duplicate_spacing_ms,
    link_stream,
    truncate_cut,
)
from .packet import Packet
from .scheduler import make_scheduler
from .trace import TraceRecorder

#: Default one-way link latency in milliseconds.
DEFAULT_LATENCY_MS = 1.0
#: Default bound on how many *new* events a single ``run`` call may
#: schedule. A self-sustaining loop (each event arming the next) grows
#: this without bound and trips; a large pre-scheduled batch does not.
MAX_EVENTS_PER_RUN = 1_000_000


class SimulationError(RuntimeError):
    """Raised on topology or event-loop misuse."""


def _drop_reason(detail: str) -> str:
    """Collapse a free-form drop detail into a low-cardinality metric
    label: digits stripped (port numbers vary per probe), spaces dashed.
    Only runs when metrics are enabled, and only on the drop path."""
    reason = "".join(c for c in detail if not c.isdigit())
    reason = reason.replace(":", "").strip().replace(" ", "-")
    return reason or "unspecified"


class Node:
    """Base class for everything attached to the network."""

    def __init__(self, name: str, asn: Optional[int] = None) -> None:
        self.name = name
        self.asn = asn
        self.network: Optional["Network"] = None
        # Lazily built frozenset of addresses() for per-packet delivery
        # checks; anything that changes a node's addresses must go
        # through Network.reindex (or invalidate_addresses) to reset it.
        self._addr_cache: Optional[frozenset] = None

    # -- wiring -----------------------------------------------------------

    def attached(self, network: "Network") -> None:
        """Called when the node joins a network."""
        self.network = network

    def addresses(self) -> set[IPAddress]:
        """Addresses owned by this node (local delivery targets)."""
        return set()

    def invalidate_addresses(self) -> None:
        """Drop the cached address set after an addressing change."""
        self._addr_cache = None

    def cached_addresses(self) -> frozenset:
        """``addresses()`` as a cached frozenset for per-packet checks."""
        cache = self._addr_cache
        if cache is None:
            cache = self._addr_cache = frozenset(self.addresses())
        return cache

    # -- packet handling ----------------------------------------------------

    def receive(self, packet: Packet) -> None:
        """Entry point for a packet arriving at this node."""
        cache = self._addr_cache
        if cache is None:
            cache = self._addr_cache = frozenset(self.addresses())
        if packet.dst in cache:
            self.deliver_local(packet)
        else:
            self.forward(packet)

    def deliver_local(self, packet: Packet) -> None:
        """Handle a packet addressed to this node. Default: drop."""
        self.trace("drop", packet, "no local handler")

    def forward(self, packet: Packet) -> None:
        """Handle a transit packet. Default: drop (end hosts don't route)."""
        self.trace("drop", packet, "not a router")

    # -- helpers -------------------------------------------------------------

    def send(self, next_hop: str, packet: Packet) -> None:
        """Hand ``packet`` to the adjacent node ``next_hop``."""
        if self.network is None:
            raise SimulationError(f"{self.name} is not attached to a network")
        self.network.transmit(self.name, next_hop, packet)

    def trace(self, action: str, packet: Packet, detail: str = "") -> None:
        network = self.network
        if network is not None and network.observing:
            if action == "drop" and network.metrics.enabled:
                network.metrics.inc("sim.drops." + _drop_reason(detail))
            network.recorder.record(
                network.now, self.name, action, packet, detail
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class Network:
    """Node registry, link table and discrete-event loop."""

    def __init__(
        self,
        trace: bool = False,
        loss_seed: "int | str" = 0,
        impairment: Optional[LinkProfile] = None,
        scheduler: str = "calendar",
        max_events_per_run: int = MAX_EVENTS_PER_RUN,
    ) -> None:
        # Imported lazily: repro.core pulls in the measurement stack,
        # which imports repro.net — a cycle at module-import time, but
        # not by the time a Network is actually constructed.
        from repro.core.metrics import active_registry

        #: The metrics registry this network reports into, captured at
        #: construction (see :func:`repro.core.metrics.use_registry`).
        #: Defaults to the no-op registry: the hot path pays one empty
        #: method call per hook when instrumentation is off.
        self.metrics = active_registry()
        self.nodes: dict[str, Node] = {}
        self._links: dict[tuple[str, str], float] = {}
        #: Link latencies pre-quantised to integer µs for the transmit
        #: fast path (parallel to ``_links``, which stays in float ms as
        #: the public unit).
        self._latency_us: dict[tuple[str, str], int] = {}
        #: Per-direction impairment state; empty on unimpaired networks,
        #: so the ``transmit`` fast path is one falsy-dict check.
        self._impaired: dict[tuple[str, str], ImpairedLink] = {}
        #: (a, b, profile) in install order, for deterministic stream
        #: re-derivation by ``reset_events``.
        self._profile_installs: list[tuple[str, str, LinkProfile]] = []
        try:
            self._queue = make_scheduler(scheduler)
        except ValueError as exc:
            raise SimulationError(str(exc)) from None
        self._seq = itertools.count()
        #: Simulation clock in integer microseconds; ``now`` presents it
        #: in float milliseconds, the public unit.
        self._now_us = 0
        if max_events_per_run <= 0:
            raise SimulationError(
                f"max_events_per_run must be positive: {max_events_per_run}"
            )
        self.max_events_per_run = max_events_per_run
        self._in_run = False
        self._run_scheduled = 0
        self.recorder = TraceRecorder(enabled=trace)
        self._address_index: dict[IPAddress, str] = {}
        #: Deterministic randomness for link impairments: legacy
        #: loss-shim links draw from it directly; profile-API links
        #: derive their own per-direction streams from it at install
        #: time (see :mod:`repro.net.impairment`).
        self.loss_rng = random.Random(loss_seed)
        if impairment is not None and not isinstance(impairment, LinkProfile):
            raise SimulationError(
                f"impairment must be a LinkProfile, got {type(impairment).__name__}"
            )
        #: Network-wide default profile applied by ``connect`` when no
        #: per-link profile is given.
        self.default_impairment = impairment

    @property
    def now(self) -> float:
        """Simulation time in milliseconds (float view of the µs clock)."""
        return self._now_us / 1000.0

    @now.setter
    def now(self, value: float) -> None:
        self._now_us = round(value * 1000)

    @property
    def observing(self) -> bool:
        """True when tracing or metrics can see this network's events.

        Hot paths consult this before building trace detail strings, so
        an unobserved run pays neither the formatting nor the record
        calls. A property (not a cached flag) because tests flip
        ``recorder.enabled`` mid-run.
        """
        return self.recorder.enabled or self.metrics.enabled

    # -- topology -----------------------------------------------------------

    def add_node(self, node: Node) -> Node:
        if node.name in self.nodes:
            raise SimulationError(f"duplicate node name: {node.name}")
        self.nodes[node.name] = node
        node.attached(self)
        node.invalidate_addresses()
        for address in node.addresses():
            self._address_index[address] = node.name
        return node

    def reindex(self, node: Node) -> None:
        """Refresh the address index after a node gains addresses."""
        node.invalidate_addresses()
        for address in node.addresses():
            self._address_index[address] = node.name

    def rebuild_address_index(self) -> None:
        """Recompute the full address index (after re-homing nodes)."""
        index: dict[IPAddress, str] = {}
        for name, node in self.nodes.items():
            node.invalidate_addresses()
            for address in node.addresses():
                index[address] = name
        self._address_index = index

    def node_for_address(self, address: "str | IPAddress") -> Optional[Node]:
        name = self._address_index.get(parse_ip(address))
        return self.nodes.get(name) if name else None

    def connect(
        self,
        a: str,
        b: str,
        latency_ms: float = DEFAULT_LATENCY_MS,
        loss: "float | None" = None,
        profile: Optional[LinkProfile] = None,
    ) -> None:
        """Create a bidirectional link between nodes ``a`` and ``b``.

        ``profile`` attaches a :class:`LinkProfile` (loss, duplication,
        reordering, jitter, corruption, truncation) to both directions;
        when omitted, the network-wide default passed to
        ``Network(impairment=...)`` applies. Each direction gets its own
        RNG stream derived from the network's seeded ``loss_rng`` so
        runs stay reproducible.

        ``loss`` is deprecated: use ``profile=LinkProfile(loss=...)``.
        """
        for name in (a, b):
            if name not in self.nodes:
                raise SimulationError(f"unknown node: {name}")
        self._links[(a, b)] = latency_ms
        self._links[(b, a)] = latency_ms
        latency_us = round(latency_ms * 1000)
        self._latency_us[(a, b)] = latency_us
        self._latency_us[(b, a)] = latency_us
        if loss is not None:
            if profile is not None:
                raise SimulationError("pass either loss= or profile=, not both")
            warnings.warn(
                "Network.connect(loss=...) is deprecated; use "
                "connect(profile=LinkProfile(loss=...))",
                DeprecationWarning,
                stacklevel=2,
            )
            self._install_legacy_loss(a, b, loss)
            return
        effective = profile if profile is not None else self.default_impairment
        if effective is not None:
            self._install_profile(a, b, effective)

    def set_link_profile(
        self, a: str, b: str, profile: Optional[LinkProfile]
    ) -> None:
        """Attach ``profile`` to an existing link (both directions), or
        clear its impairments with ``None``. Fault injection after
        topology build — the profile-API successor to ``set_link_loss``.
        """
        if (a, b) not in self._links:
            raise SimulationError(f"no link {a} <-> {b}")
        if profile is None:
            self._impaired.pop((a, b), None)
            self._impaired.pop((b, a), None)
            self._profile_installs = [
                entry for entry in self._profile_installs if entry[:2] != (a, b)
            ]
            return
        if not isinstance(profile, LinkProfile):
            raise SimulationError(
                f"profile must be a LinkProfile, got {type(profile).__name__}"
            )
        self._install_profile(a, b, profile)

    def link_profile(self, a: str, b: str) -> Optional[LinkProfile]:
        """The profile active on link direction ``a -> b``, if any."""
        state = self._impaired.get((a, b))
        return None if state is None else state.profile

    def set_link_loss(self, a: str, b: str, loss: float) -> None:
        """Deprecated: use :meth:`set_link_profile` with a loss-only
        :class:`LinkProfile`. Kept as a shim for existing callers."""
        warnings.warn(
            "Network.set_link_loss is deprecated; use "
            "set_link_profile(a, b, LinkProfile(loss=...))",
            DeprecationWarning,
            stacklevel=2,
        )
        if (a, b) not in self._links:
            raise SimulationError(f"no link {a} <-> {b}")
        self._install_legacy_loss(a, b, loss)

    def _install_legacy_loss(self, a: str, b: str, loss: float) -> None:
        """Loss-only shim semantics: validate like the old API and keep
        drawing from the shared ``loss_rng`` at transmit time (tests
        exist that reseed or replace that RNG after configuring loss)."""
        if not 0.0 <= loss < 1.0:
            raise SimulationError(f"loss must be in [0, 1): {loss}")
        if not loss:
            self._impaired.pop((a, b), None)
            self._impaired.pop((b, a), None)
            return
        profile = LinkProfile(loss=loss)
        self._impaired[(a, b)] = ImpairedLink(profile, None)
        self._impaired[(b, a)] = ImpairedLink(profile, None)

    def _install_profile(self, a: str, b: str, profile: LinkProfile) -> None:
        """Install ``profile`` on both directions with dedicated RNG
        streams. The seed token is drawn from ``loss_rng`` once per
        install, so distinct links (and distinct ``loss_seed`` values)
        get independent, reproducible impairment schedules."""
        self._profile_installs = [
            entry for entry in self._profile_installs if entry[:2] != (a, b)
        ]
        self._profile_installs.append((a, b, profile))
        token = self.loss_rng.getrandbits(64)
        for sender, receiver in ((a, b), (b, a)):
            self._impaired[(sender, receiver)] = ImpairedLink(
                profile, link_stream(token, sender, receiver)
            )

    def are_connected(self, a: str, b: str) -> bool:
        return (a, b) in self._links

    def neighbors(self, name: str) -> list[str]:
        return sorted(b for (a, b) in self._links if a == name)

    def latency(self, a: str, b: str) -> float:
        try:
            return self._links[(a, b)]
        except KeyError:
            raise SimulationError(f"no link {a} <-> {b}") from None

    # -- event loop ---------------------------------------------------------

    def schedule(self, delay_ms: float, action: Callable[[], None]) -> None:
        if delay_ms < 0:
            raise SimulationError(f"negative delay: {delay_ms}")
        if not math.isfinite(delay_ms):
            # NaN slips past the < 0 check (it compares false to
            # everything) and then poisons event ordering; inf parks an
            # event the loop can never reach. Both are caller bugs.
            raise SimulationError(f"non-finite delay: {delay_ms}")
        self._schedule_us(round(delay_ms * 1000), action, None)

    def _schedule_us(
        self, delay_us: int, fn: Callable, arg: Optional[Packet]
    ) -> None:
        """Internal enqueue with a pre-quantised integer-µs delay.

        ``fn`` is called with ``arg`` unless ``arg`` is None — passing
        the packet through the entry avoids a closure allocation per
        transmitted packet.
        """
        if self._in_run:
            self._run_scheduled += 1
        self._queue.push((self._now_us + delay_us, next(self._seq), fn, arg))

    def transmit(self, sender: str, receiver: str, packet: Packet) -> None:
        """Move ``packet`` from ``sender`` to adjacent ``receiver``."""
        if self._impaired:
            state = self._impaired.get((sender, receiver))
            if state is not None and state.active:
                self._transmit_impaired(
                    sender, receiver, packet, self.latency(sender, receiver), state
                )
                return
        try:
            latency_us = self._latency_us[(sender, receiver)]
        except KeyError:
            raise SimulationError(f"no link {sender} <-> {receiver}") from None
        if self.observing:
            self.metrics.inc("sim.link_transits")
            self.recorder.record(self.now, sender, "send", packet, f"-> {receiver}")
        self._schedule_us(latency_us, self.nodes[receiver].receive, packet)

    def _transmit_impaired(
        self,
        sender: str,
        receiver: str,
        packet: Packet,
        latency: float,
        state: ImpairedLink,
    ) -> None:
        """Apply ``state.profile`` to one transmission.

        Draw order is fixed — loss, corrupt, truncate, duplicate, then
        per-copy jitter and reorder — and a draw only happens when the
        corresponding rate is non-zero, so each link's RNG stream is a
        stable function of the traffic that crossed it (the determinism
        contract in :mod:`repro.net.impairment`).
        """
        profile = state.profile
        rng = state.rng if state.rng is not None else self.loss_rng
        observing = self.observing
        if profile.loss and rng.random() < profile.loss:
            if observing:
                self.metrics.inc("net.impair.dropped")
                self.metrics.inc("sim.drops.link-loss")
                self.recorder.record(
                    self.now, sender, "drop", packet, f"link loss -> {receiver}"
                )
            return
        if profile.corrupt and rng.random() < profile.corrupt:
            # Bit damage fails the receiver's UDP checksum, so a
            # corrupted datagram is a drop counted under its own name.
            if observing:
                self.metrics.inc("net.impair.corrupted")
                self.recorder.record(
                    self.now, sender, "drop", packet, f"corrupted -> {receiver}"
                )
            return
        if (
            profile.truncate
            and packet.udp is not None
            and packet.udp.payload
            and rng.random() < profile.truncate
        ):
            packet = packet.truncated(truncate_cut(rng, len(packet.udp.payload)))
            if observing:
                self.metrics.inc("net.impair.truncated")
                self.recorder.record(
                    self.now, sender, "mangle", packet, f"truncated -> {receiver}"
                )
        copies = 1
        if profile.duplicate and rng.random() < profile.duplicate:
            copies = 2
            if observing:
                self.metrics.inc("net.impair.duplicated")
        node = self.nodes[receiver]
        for copy_index in range(copies):
            delay = latency + copy_index * duplicate_spacing_ms()
            if profile.jitter_ms:
                delay += profile.draw_jitter(rng)
            if profile.reorder and rng.random() < profile.reorder:
                delay += rng.uniform(0.0, profile.reorder_window_ms)
                if observing:
                    self.metrics.inc("net.impair.reordered")
            if observing:
                self.metrics.inc("sim.link_transits")
                detail = f"-> {receiver}" + (" (dup)" if copy_index else "")
                self.recorder.record(self.now, sender, "send", packet, detail)
            self._schedule_us(round(delay * 1000), node.receive, packet)

    def inject(self, at: str, packet: Packet, delay_ms: float = 0.0) -> None:
        """Deliver ``packet`` directly to node ``at`` (test/measurement hook)."""
        if delay_ms < 0:
            raise SimulationError(f"negative delay: {delay_ms}")
        if not math.isfinite(delay_ms):
            raise SimulationError(f"non-finite delay: {delay_ms}")
        self._schedule_us(round(delay_ms * 1000), self.nodes[at].receive, packet)

    def run(self, until: Optional[float] = None) -> int:
        """Process events (up to simulated time ``until``); return count.

        The runaway guard bounds *queue growth*: events scheduled while
        the loop spins (a self-feeding loop grows this forever) rather
        than a flat per-call event count (which a single legitimately
        large pre-scheduled batch would trip).
        """
        queue = self._queue
        limit_us = None if until is None else round(until * 1000)
        budget = self.max_events_per_run
        processed = 0
        self._run_scheduled = 0
        self._in_run = True
        try:
            while True:
                entry = queue.pop_due(limit_us)
                if entry is None:
                    break
                time_us = entry[0]
                if time_us > self._now_us:
                    self._now_us = time_us
                fn = entry[2]
                arg = entry[3]
                if arg is None:
                    fn()
                else:
                    fn(arg)
                processed += 1
                if self._run_scheduled > budget:
                    raise SimulationError("event-loop runaway (routing loop?)")
        finally:
            self._in_run = False
        if limit_us is not None and limit_us > self._now_us:
            self._now_us = limit_us
        if processed:
            self.metrics.inc("sim.events_dispatched", processed)
        return processed

    def run_until_idle(self) -> int:
        return self.run()

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    # -- per-probe reuse ----------------------------------------------------

    def reset_events(self, loss_seed: "int | str") -> None:
        """Return the event loop to its just-built state for probe reuse.

        Clears the queue, clock, sequence counter, trace buffer and any
        host of leftover events; re-captures the ambient metrics registry
        (store segments swap registries between probes); reseeds
        ``loss_rng`` and re-derives every impairment stream in the
        original install order, so a reused network's impairment
        schedule is identical to a freshly built one's.
        """
        from repro.core.metrics import active_registry

        self.metrics = active_registry()
        self._queue.clear()
        self._seq = itertools.count()
        self._now_us = 0
        self._in_run = False
        self._run_scheduled = 0
        self.recorder.clear()
        self.loss_rng = random.Random(loss_seed)
        if self._profile_installs:
            self._impaired.clear()
            for a, b, profile in self._profile_installs:
                token = self.loss_rng.getrandbits(64)
                for sender, receiver in ((a, b), (b, a)):
                    self._impaired[(sender, receiver)] = ImpairedLink(
                        profile, link_stream(token, sender, receiver)
                    )
