"""Network address translation: the SNAT engine every CPE runs.

Home routers rewrite outbound packets to their WAN address and allocate a
public source port per flow (source NAT); inbound packets to the WAN
address are matched against the translation table and rewritten back.
This matters for the methodology: the Step-2 query is addressed to the
CPE's *own WAN address*, which is precisely the address that NAT makes
special — an honest CPE terminates or drops such packets, it never
forwards them upstream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .addr import IPAddress, parse_ip
from .packet import Packet, Protocol

#: First WAN-side port handed out by the NAT.
NAT_PORT_BASE = 50000
#: Ports above this are never allocated (wraps to exhaustion error).
NAT_PORT_MAX = 65535


@dataclass(frozen=True)
class FlowKey:
    """Identity of an outbound flow, pre-translation."""

    src: IPAddress
    sport: int
    dst: IPAddress
    dport: int


@dataclass(frozen=True)
class NatBinding:
    """A translation-table entry."""

    flow: FlowKey
    public_port: int


class NatTable:
    """Port-translating source NAT for one WAN address per family."""

    def __init__(self, wan_v4: "str | IPAddress | None" = None,
                 wan_v6: "str | IPAddress | None" = None) -> None:
        self.wan_v4 = parse_ip(wan_v4) if wan_v4 else None
        self.wan_v6 = parse_ip(wan_v6) if wan_v6 else None
        self._outbound: dict[FlowKey, NatBinding] = {}
        self._inbound: dict[tuple[int, int], NatBinding] = {}  # (family, port)
        self._next_port = NAT_PORT_BASE

    def wan_address(self, family: int) -> Optional[IPAddress]:
        return self.wan_v4 if family == 4 else self.wan_v6

    def _allocate_port(self, family: int) -> int:
        while (family, self._next_port) in self._inbound:
            self._next_port += 1
        if self._next_port > NAT_PORT_MAX:
            raise RuntimeError("NAT port space exhausted")
        port = self._next_port
        self._next_port += 1
        return port

    # -- translation ----------------------------------------------------

    def translate_outbound(self, packet: Packet) -> Optional[Packet]:
        """SNAT an outbound packet; None if no WAN address for the family."""
        assert packet.protocol is Protocol.UDP and packet.udp is not None
        wan = self.wan_address(packet.family)
        if wan is None:
            return None
        flow = FlowKey(packet.src, packet.udp.sport, packet.dst, packet.udp.dport)
        binding = self._outbound.get(flow)
        if binding is None:
            binding = NatBinding(flow, self._allocate_port(packet.family))
            self._outbound[flow] = binding
            self._inbound[(packet.family, binding.public_port)] = binding
        return packet.with_src(wan, sport=binding.public_port)

    def translate_inbound(self, packet: Packet) -> Optional[Packet]:
        """Reverse-translate a packet arriving at the WAN address.

        Returns the rewritten packet headed for the LAN host, or None if
        no binding exists (the packet is *for the CPE itself* or unsolicited).

        Note the deliberately permissive match: only the WAN port is
        checked, not the remote endpoint. This is "full-cone"-style NAT,
        and it is what lets a *spoofed* interceptor response (src forged
        to the target resolver) traverse the NAT exactly as the genuine
        response would — the property transparent interception relies on.
        """
        assert packet.protocol is Protocol.UDP and packet.udp is not None
        binding = self._inbound.get((packet.family, packet.udp.dport))
        if binding is None:
            return None
        return packet.with_dst(binding.flow.src, dport=binding.flow.sport)

    def binding_for_public_port(self, family: int, port: int) -> Optional[NatBinding]:
        """Look up a binding by its WAN-side port (used for ICMP errors)."""
        return self._inbound.get((family, port))

    def binding_count(self) -> int:
        return len(self._outbound)
