"""Simulated IP packets: UDP datagrams and ICMP messages.

Packets are immutable; every rewriting device (NAT, DNAT interceptor,
spoofing middlebox) produces a *new* packet via ``replace``-style helpers.
That makes packet traces trustworthy: a captured packet can never be
mutated after the fact by a later hop.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, replace
from typing import Optional

from .addr import IPAddress, parse_ip

#: Default initial TTL, matching common OS defaults.
DEFAULT_TTL = 64

_packet_counter = itertools.count(1)


class Protocol(enum.Enum):
    UDP = "udp"
    ICMP = "icmp"


class IcmpType(enum.Enum):
    """The ICMP messages the simulator generates."""

    TIME_EXCEEDED = "time-exceeded"
    PORT_UNREACHABLE = "port-unreachable"
    NET_UNREACHABLE = "net-unreachable"


@dataclass(frozen=True)
class UdpData:
    """UDP header + payload."""

    sport: int
    dport: int
    payload: bytes

    def __post_init__(self) -> None:
        for port in (self.sport, self.dport):
            if not 0 < port <= 0xFFFF:
                raise ValueError(f"bad port: {port}")


@dataclass(frozen=True)
class IcmpData:
    """ICMP message quoting the packet that triggered it."""

    icmp_type: IcmpType
    quoted: Optional["Packet"] = None


@dataclass(frozen=True)
class Packet:
    """A simulated IP packet.

    ``uid`` is a monotonically increasing identity used only for tracing;
    rewritten copies keep their ancestor's uid in ``lineage`` so a trace
    can follow one query through NAT and DNAT rewrites.
    """

    src: IPAddress
    dst: IPAddress
    protocol: Protocol
    udp: Optional[UdpData] = None
    icmp: Optional[IcmpData] = None
    ttl: int = DEFAULT_TTL
    uid: int = field(default_factory=lambda: next(_packet_counter))
    lineage: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "src", parse_ip(self.src))
        object.__setattr__(self, "dst", parse_ip(self.dst))
        if self.src.version != self.dst.version:
            raise ValueError("src/dst address family mismatch")
        if self.protocol is Protocol.UDP and self.udp is None:
            raise ValueError("UDP packet without UDP data")
        if self.protocol is Protocol.ICMP and self.icmp is None:
            raise ValueError("ICMP packet without ICMP data")

    @property
    def family(self) -> int:
        return self.src.version

    # -- rewriting helpers -------------------------------------------------

    def _derived(self, **changes) -> "Packet":
        # Rewrites happen once or more per hop, so this skips
        # dataclasses.replace and __post_init__ re-validation: every field
        # either carries over from this (already validated) packet or is
        # supplied pre-parsed by the with_*/truncated helpers below.
        child = Packet.__new__(Packet)
        state = dict(self.__dict__)
        state.update(changes)
        state["uid"] = next(_packet_counter)
        state["lineage"] = self.lineage + (self.uid,)
        child.__dict__.update(state)
        return child

    def decrement_ttl(self) -> "Packet":
        return self._derived(ttl=self.ttl - 1)

    def with_dst(self, dst: "str | IPAddress", dport: int | None = None) -> "Packet":
        """DNAT rewrite: new destination address (and optionally port)."""
        udp = self.udp
        if dport is not None and udp is not None:
            udp = replace(udp, dport=dport)
        return self._derived(dst=parse_ip(dst), udp=udp)

    def with_src(self, src: "str | IPAddress", sport: int | None = None) -> "Packet":
        """SNAT rewrite: new source address (and optionally port)."""
        udp = self.udp
        if sport is not None and udp is not None:
            udp = replace(udp, sport=sport)
        return self._derived(src=parse_ip(src), udp=udp)

    def truncated(self, length: int) -> "Packet":
        """Damage rewrite: keep only the first ``length`` payload bytes
        (link impairment — the receiver sees a short, undecodable datagram)."""
        if self.udp is None:
            raise ValueError("only UDP packets can be truncated")
        return self._derived(udp=replace(self.udp, payload=self.udp.payload[:length]))

    def describe(self) -> str:
        if self.protocol is Protocol.UDP:
            assert self.udp is not None
            return (
                f"UDP {self.src}:{self.udp.sport} -> {self.dst}:{self.udp.dport} "
                f"ttl={self.ttl} len={len(self.udp.payload)}"
            )
        assert self.icmp is not None
        return f"ICMP {self.icmp.icmp_type.value} {self.src} -> {self.dst} ttl={self.ttl}"


def make_udp(
    src: "str | IPAddress",
    sport: int,
    dst: "str | IPAddress",
    dport: int,
    payload: bytes,
    ttl: int = DEFAULT_TTL,
) -> Packet:
    """Build a UDP packet."""
    return Packet(
        src=parse_ip(src),
        dst=parse_ip(dst),
        protocol=Protocol.UDP,
        udp=UdpData(sport=sport, dport=dport, payload=payload),
        ttl=ttl,
    )


def make_reply(request: Packet, payload: bytes, src: "str | IPAddress | None" = None) -> Packet:
    """Build the UDP reply to ``request``, swapping the 5-tuple.

    ``src`` overrides the reply's source address. A *transparent*
    interceptor must pass the original destination here — the paper notes
    (§2) that responses arrive "with the source address spoofed to be
    that of the target resolver; if not, the response would be rejected".
    """
    assert request.udp is not None
    return make_udp(
        src=parse_ip(src) if src is not None else request.dst,
        sport=request.udp.dport,
        dst=request.src,
        dport=request.udp.sport,
        payload=payload,
    )


def make_icmp_time_exceeded(offender: Packet, reporter: "str | IPAddress") -> Packet:
    """Build the ICMP Time Exceeded a router sends when TTL hits zero."""
    return Packet(
        src=parse_ip(reporter),
        dst=offender.src,
        protocol=Protocol.ICMP,
        icmp=IcmpData(IcmpType.TIME_EXCEEDED, quoted=offender),
    )


def make_icmp_port_unreachable(offender: Packet, reporter: "str | IPAddress") -> Packet:
    """Build the ICMP Port Unreachable for a closed UDP port."""
    return Packet(
        src=parse_ip(reporter),
        dst=offender.src,
        protocol=Protocol.ICMP,
        icmp=IcmpData(IcmpType.PORT_UNREACHABLE, quoted=offender),
    )
