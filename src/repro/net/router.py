"""Routers: longest-prefix-match forwarding, TTL, ICMP, bogon filtering.

Routers implement the plumbing that makes the paper's three techniques
*mean* something:

- TTL decrement + ICMP Time Exceeded make TTL-based hop localisation
  (the §6 future-work experiment) possible;
- the absence of routes to bogon space (``drop_bogons``) is exactly why
  a bogon query answered implies an in-AS interceptor (§3.3);
- ordinary destination-based forwarding is what a DNAT interceptor
  violates when it "switches roles" (§3.2).
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from typing import Optional

from .addr import IPAddress, IPNetwork, is_bogon, parse_ip
from .packet import Packet, Protocol, make_icmp_time_exceeded
from .sim import Node


@dataclass(frozen=True)
class Route:
    """One routing-table entry: prefix -> adjacent node."""

    prefix: IPNetwork
    next_hop: str

    @property
    def prefixlen(self) -> int:
        return self.prefix.prefixlen


class RoutingTable:
    """Longest-prefix-match over static routes, per address family."""

    def __init__(self) -> None:
        self._routes: list[Route] = []
        # Host routes (/32, /128) answer most lookups; keep them O(1).
        self._host_routes: dict[IPAddress, Route] = {}
        # Destination -> next hop memo; invalidated on any table change.
        self._lookup_cache: dict[IPAddress, Optional[str]] = {}

    def add(self, prefix: "str | IPNetwork", next_hop: str) -> None:
        if isinstance(prefix, str):
            prefix = ipaddress.ip_network(prefix)
        self._lookup_cache.clear()
        route = Route(prefix, next_hop)
        if prefix.prefixlen == prefix.max_prefixlen:
            self._host_routes[prefix.network_address] = route
            return
        self._routes.append(route)
        # Keep sorted by descending prefix length so lookup is a scan to
        # first match.
        self._routes.sort(key=lambda r: r.prefixlen, reverse=True)

    def add_default(self, next_hop: str, family: int = 4) -> None:
        prefix = "0.0.0.0/0" if family == 4 else "::/0"
        self.add(prefix, next_hop)

    def remove(self, prefix: "str | IPNetwork") -> bool:
        """Remove all routes for ``prefix``; True if any existed."""
        if isinstance(prefix, str):
            prefix = ipaddress.ip_network(prefix)
        self._lookup_cache.clear()
        if prefix.prefixlen == prefix.max_prefixlen:
            return self._host_routes.pop(prefix.network_address, None) is not None
        before = len(self._routes)
        self._routes = [r for r in self._routes if r.prefix != prefix]
        return len(self._routes) != before

    def replace(self, prefix: "str | IPNetwork", next_hop: str) -> None:
        """Replace any existing routes for ``prefix`` with one to ``next_hop``."""
        self.remove(prefix)
        self.add(prefix, next_hop)

    def lookup(self, dst: "str | IPAddress") -> Optional[str]:
        address = parse_ip(dst)
        cache = self._lookup_cache
        try:
            return cache[address]
        except KeyError:
            pass
        host = self._host_routes.get(address)
        if host is not None:
            result: Optional[str] = host.next_hop
        else:
            result = None
            for route in self._routes:
                if route.prefix.version == address.version and address in route.prefix:
                    result = route.next_hop
                    break
        if len(cache) >= 1024:
            cache.clear()
        cache[address] = result
        return result

    def __len__(self) -> int:
        return len(self._routes) + len(self._host_routes)

    def __iter__(self):
        return iter(list(self._host_routes.values()) + self._routes)


class Router(Node):
    """A plain IP router.

    ``drop_bogons=True`` models the behaviour of AS border and transit
    routers, which have no route to (and commonly filter) bogon space.
    Access/aggregation routers inside an ISP typically just follow their
    default route, so they leave ``drop_bogons`` off — meaning a bogon
    query *does* travel from the CPE to the border before dying, giving
    in-path middleboxes their chance to intercept it.
    """

    def __init__(
        self,
        name: str,
        addresses: "list[str | IPAddress] | None" = None,
        asn: Optional[int] = None,
        drop_bogons: bool = False,
    ) -> None:
        super().__init__(name, asn=asn)
        self._addresses: set[IPAddress] = {parse_ip(a) for a in (addresses or [])}
        self.routes = RoutingTable()
        self.drop_bogons = drop_bogons

    def addresses(self) -> set[IPAddress]:
        return set(self._addresses)

    def add_address(self, address: "str | IPAddress") -> None:
        self._addresses.add(parse_ip(address))
        self.invalidate_addresses()
        if self.network is not None:
            self.network.reindex(self)

    # -- forwarding ---------------------------------------------------------

    def forward(self, packet: Packet) -> None:
        if packet.ttl <= 1:
            self._emit_time_exceeded(packet)
            return
        packet = packet.decrement_ttl()
        handled = self.inspect_transit(packet)
        if handled:
            return
        self.forward_by_route(packet)

    def forward_by_route(self, packet: Packet) -> None:
        """Plain destination-based forwarding (no inspection)."""
        if self.drop_bogons and is_bogon(packet.dst):
            self.trace("drop", packet, "bogon destination")
            return
        next_hop = self.routes.lookup(packet.dst)
        if next_hop is None:
            self.trace("drop", packet, "no route")
            return
        network = self.network
        if network is not None and network.observing:
            self.trace("forward", packet, f"-> {next_hop}")
        self.send(next_hop, packet)

    def inspect_transit(self, packet: Packet) -> bool:
        """Hook for middleboxes/CPE. Return True if packet was consumed."""
        return False

    def _emit_time_exceeded(self, packet: Packet) -> None:
        self.trace("drop", packet, "ttl exceeded")
        reporter = self._reporter_address(packet.family)
        if reporter is None:
            return
        icmp = make_icmp_time_exceeded(packet, reporter)
        self.send_toward(icmp)

    def _reporter_address(self, family: int) -> Optional[IPAddress]:
        for address in sorted(self._addresses, key=str):
            if address.version == family:
                return address
        return None

    def send_toward(self, packet: Packet) -> None:
        """Route a locally generated packet (replies, ICMP)."""
        if packet.dst in self.cached_addresses():
            self.deliver_local(packet)
            return
        next_hop = self.routes.lookup(packet.dst)
        if next_hop is None:
            self.trace("drop", packet, "no route for local emission")
            return
        self.send(next_hop, packet)
