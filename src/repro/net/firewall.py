"""A small iptables-flavoured firewall: match rules with actions.

The XB6 case study (§5) identified the interception mechanism in the
RDK-B firmware's firewall configuration (``firewall.c`` in CcspUtopia):
a PREROUTING DNAT rule that rewrites the destination of all UDP/53
traffic to the gateway's own resolver. This module models just enough of
that machinery — ordered rules, first match wins, ACCEPT / DROP / DNAT
actions — for the CPE models to express their behaviour the way the real
firmware does.
"""

from __future__ import annotations

import enum
import ipaddress
from dataclasses import dataclass
from typing import Optional

from .addr import IPAddress, IPNetwork, parse_ip
from .packet import Packet, Protocol


class Action(enum.Enum):
    ACCEPT = "ACCEPT"
    DROP = "DROP"
    DNAT = "DNAT"


@dataclass(frozen=True)
class Match:
    """Packet match criteria; ``None`` fields match anything."""

    protocol: Optional[Protocol] = None
    dport: Optional[int] = None
    sport: Optional[int] = None
    dst: Optional[IPNetwork] = None
    src: Optional[IPNetwork] = None
    family: Optional[int] = None

    def matches(self, packet: Packet) -> bool:
        if self.family is not None and packet.family != self.family:
            return False
        if self.protocol is not None and packet.protocol is not self.protocol:
            return False
        if self.protocol is Protocol.UDP or packet.protocol is Protocol.UDP:
            udp = packet.udp
            if self.dport is not None and (udp is None or udp.dport != self.dport):
                return False
            if self.sport is not None and (udp is None or udp.sport != self.sport):
                return False
        if self.dst is not None and packet.dst not in self.dst:
            return False
        if self.src is not None and packet.src not in self.src:
            return False
        return True


@dataclass(frozen=True)
class Rule:
    """One firewall rule: match -> action (+ DNAT rewrite target)."""

    match: Match
    action: Action
    dnat_to: Optional[IPAddress] = None
    dnat_port: Optional[int] = None
    comment: str = ""

    def __post_init__(self) -> None:
        if self.action is Action.DNAT and self.dnat_to is None:
            raise ValueError("DNAT rule requires dnat_to")

    def render(self) -> str:
        """iptables-ish presentation, for traces and the case study."""
        parts = []
        if self.match.protocol is not None:
            parts.append(f"-p {self.match.protocol.value}")
        if self.match.dport is not None:
            parts.append(f"--dport {self.match.dport}")
        if self.match.dst is not None:
            parts.append(f"-d {self.match.dst}")
        parts.append(f"-j {self.action.value}")
        if self.action is Action.DNAT:
            target = str(self.dnat_to)
            if self.dnat_port is not None:
                target += f":{self.dnat_port}"
            parts.append(f"--to-destination {target}")
        if self.comment:
            parts.append(f"# {self.comment}")
        return " ".join(parts)


@dataclass(frozen=True)
class Verdict:
    """Result of running a packet through a chain."""

    action: Action
    packet: Packet
    rule: Optional[Rule] = None


class Chain:
    """An ordered rule list, first match wins; default ACCEPT."""

    def __init__(self, name: str, default: Action = Action.ACCEPT) -> None:
        self.name = name
        self.default = default
        self.rules: list[Rule] = []

    def append(self, rule: Rule) -> None:
        if rule.action is Action.DNAT and self.name != "PREROUTING":
            raise ValueError("DNAT only makes sense in PREROUTING")
        self.rules.append(rule)

    def evaluate(self, packet: Packet) -> Verdict:
        for rule in self.rules:
            if rule.match.matches(packet):
                if rule.action is Action.DNAT:
                    rewritten = packet.with_dst(rule.dnat_to, dport=rule.dnat_port)
                    return Verdict(Action.DNAT, rewritten, rule)
                return Verdict(rule.action, packet, rule)
        return Verdict(self.default, packet, None)

    def render(self) -> str:
        lines = [f"Chain {self.name} (policy {self.default.value})"]
        lines.extend("  " + rule.render() for rule in self.rules)
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.rules)


def udp53_dnat_rule(
    target: "str | IPAddress", comment: str = "", dnat_port: Optional[int] = None
) -> Rule:
    """The signature XDNS rule: hijack *all* UDP/53 to ``target``.

    Mirrors the RDK-B firewall's ``-p udp --dport 53 -j DNAT
    --to-destination <gateway>`` PREROUTING entry.
    """
    target = parse_ip(target)
    return Rule(
        match=Match(protocol=Protocol.UDP, dport=53, family=target.version),
        action=Action.DNAT,
        dnat_to=target,
        dnat_port=dnat_port,
        comment=comment or "XDNS DNS redirection",
    )


def network(prefix: str) -> IPNetwork:
    """Shorthand used when building match criteria."""
    return ipaddress.ip_network(prefix)
