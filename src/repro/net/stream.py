"""Shared framing helpers for the simulated encrypted stream transports.

All three encrypted transports (DoT, DoH, DoQ) abstract their session
layer the same way: the security-relevant outcome of the handshake is a
*name* — the server identity the client authenticated (on responses) or
the server name the client dialed (SNI, on requests). Frames therefore
all embed length-prefixed names, and this module owns that one encoding
so the protocol modules (:mod:`repro.net.dot`, :mod:`repro.net.doh`,
:mod:`repro.net.doq`) cannot drift apart.

Wire shape: one length byte followed by that many bytes of UTF-8. Names
longer than 255 bytes cannot be encoded (same bound as a TLS SNI
host_name length in practice and as the original DoT framing here).
"""

from __future__ import annotations

from typing import Optional


def pack_identity(identity: str) -> bytes:
    """Encode ``identity`` as a length-prefixed UTF-8 name."""
    encoded = identity.encode("utf-8")
    if len(encoded) > 255:
        raise ValueError("server identity too long")
    return bytes([len(encoded)]) + encoded


def unpack_identity(data: bytes, offset: int = 0) -> Optional[tuple[str, int]]:
    """Decode a length-prefixed name at ``offset``.

    Returns ``(identity, next_offset)``, or None when the buffer is too
    short to hold the length byte or the name it promises.
    """
    if len(data) < offset + 1:
        return None
    length = data[offset]
    start = offset + 1
    if len(data) < start + length:
        return None
    return data[start : start + length].decode("utf-8", "replace"), start + length
