"""Link impairments: the last-mile fault model (loss, duplication,
reordering, jitter, corruption, truncation).

The paper's pilot study measured over real residential access networks,
where none of these pathologies are exotic. This module gives the
simulator a first-class, *deterministic* fault-injection layer:

* a :class:`LinkProfile` describes what one link does to packets;
* profiles attach per-link (``Network.connect(..., profile=...)`` /
  ``Network.set_link_profile``) or network-wide
  (``Network(impairment=...)``);
* the network applies them inside ``transmit`` and counts every
  decision (``net.impair.dropped`` / ``duplicated`` / ``reordered`` /
  ``corrupted`` / ``truncated``).

Determinism contract
--------------------

Every impaired link direction owns its own RNG stream, seeded from the
network's ``loss_seed`` (via ``loss_rng``) plus the link endpoints at
profile-install time. Per packet, draws happen in a fixed order (loss,
corrupt, truncate, duplicate, then per-copy jitter and reorder) and a
draw is only taken when the corresponding rate is non-zero — so for a
fixed seed the whole impairment schedule is a pure function of the
traffic, independent of tracing, metrics, wall clock, or how many
worker processes a fleet study uses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields
from typing import Optional

#: Supported jitter distributions. ``uniform`` draws in
#: ``[0, jitter_ms]``; ``exponential`` draws with mean ``jitter_ms``,
#: capped at ``8 * jitter_ms`` so a single unlucky packet cannot stall a
#: simulation behind one far-future event.
JITTER_MODELS = ("uniform", "exponential")

#: Extra delay applied to the second copy of a duplicated packet, so the
#: duplicate is observably distinct in traces without reordering it past
#: unrelated traffic on its own.
_DUPLICATE_SPACING_MS = 0.25

#: Truncation cuts payloads to fewer bytes than a DNS header (12), which
#: models the mangled-datagram case: the bytes arrive but no parser can
#: make a message of them, exercising the client's validation path.
_TRUNCATE_MAX_BYTES = 12


@dataclass(frozen=True)
class LinkProfile:
    """What one link does to each packet that crosses it.

    All rates are per-packet probabilities in ``[0, 1)``; the default
    profile is a perfect link. ``loss`` drops the packet outright.
    ``corrupt`` models bit damage — the receiver's UDP checksum catches
    it, so a corrupted datagram is also a drop, counted separately.
    ``truncate`` delivers the datagram cut below DNS-header size (the
    receiver sees undecodable bytes). ``duplicate`` delivers a second
    copy. ``jitter_ms`` adds a random delay drawn from ``jitter_model``;
    ``reorder`` holds the packet back an extra ``uniform(0,
    reorder_window_ms]`` so later sends can overtake it.
    """

    loss: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    reorder_window_ms: float = 0.0
    jitter_ms: float = 0.0
    jitter_model: str = "uniform"
    corrupt: float = 0.0
    truncate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("loss", "duplicate", "reorder", "corrupt", "truncate"):
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"{name} must be in [0, 1): {rate}")
        for name in ("reorder_window_ms", "jitter_ms"):
            value = getattr(self, name)
            if value < 0.0:
                raise ValueError(f"{name} must be >= 0: {value}")
        if self.jitter_model not in JITTER_MODELS:
            raise ValueError(
                f"jitter_model must be one of {JITTER_MODELS}: "
                f"{self.jitter_model!r}"
            )
        if self.reorder and not self.reorder_window_ms:
            raise ValueError("reorder needs a positive reorder_window_ms")

    @property
    def is_null(self) -> bool:
        """True when the profile cannot affect any packet."""
        return not (
            self.loss
            or self.duplicate
            or self.reorder
            or self.jitter_ms
            or self.corrupt
            or self.truncate
        )

    def draw_jitter(self, rng: random.Random) -> float:
        if self.jitter_model == "uniform":
            return rng.uniform(0.0, self.jitter_ms)
        return min(rng.expovariate(1.0 / self.jitter_ms), 8.0 * self.jitter_ms)

    def describe(self) -> str:
        parts = [
            f"{field.name}={getattr(self, field.name)}"
            for field in fields(self)
            if getattr(self, field.name) != field.default
        ]
        return "LinkProfile(" + ", ".join(parts) + ")" if parts else "LinkProfile()"


class ImpairedLink:
    """Per-direction impairment state: the profile plus its RNG stream.

    ``rng=None`` marks a link configured through the deprecated
    loss-only shims (``connect(loss=...)`` / ``set_link_loss``): those
    keep drawing from the network-wide ``loss_rng``, preserving the
    pre-profile semantics (including tests that script that RNG).
    """

    __slots__ = ("profile", "rng", "active")

    def __init__(self, profile: LinkProfile, rng: Optional[random.Random]) -> None:
        self.profile = profile
        self.rng = rng
        #: Cached ``not profile.is_null`` — checked on every transmit, so
        #: a null profile costs one dict lookup and one attribute read.
        self.active = not profile.is_null


def link_stream(token: int, sender: str, receiver: str) -> random.Random:
    """The RNG stream for one link direction.

    Seeded with a string, which :class:`random.Random` hashes through
    SHA-512 — stable across processes and ``PYTHONHASHSEED`` values, the
    property the workers-invariance guarantee rests on.
    """
    return random.Random(f"impair:{token}:{sender}>{receiver}")


def truncate_cut(rng: random.Random, payload_len: int) -> int:
    """Bytes to keep for a truncated payload: always under the DNS
    header size (and under the original length)."""
    return rng.randrange(0, min(_TRUNCATE_MAX_BYTES, payload_len))


def duplicate_spacing_ms() -> float:
    return _DUPLICATE_SPACING_MS


#: Named profiles for the CLI / chaos studies. ``residential`` is
#: calibrated to a typical cable/DSL last mile (a couple percent loss,
#: occasional duplication and reordering, moderate jitter, rare
#: mangling); ``wifi`` is a congested in-home wireless hop; ``satellite``
#: is long-delay-variance with heavy reordering. ``null`` installs the
#: impairment hooks with every rate at zero — used by the overhead
#: benchmark to price the hook itself.
IMPAIRMENT_PROFILES: dict[str, LinkProfile] = {
    "residential": LinkProfile(
        loss=0.02,
        duplicate=0.005,
        reorder=0.02,
        reorder_window_ms=30.0,
        jitter_ms=15.0,
        corrupt=0.002,
        truncate=0.001,
    ),
    "wifi": LinkProfile(
        loss=0.05,
        duplicate=0.01,
        reorder=0.05,
        reorder_window_ms=60.0,
        jitter_ms=40.0,
        jitter_model="exponential",
        corrupt=0.005,
        truncate=0.002,
    ),
    "satellite": LinkProfile(
        loss=0.01,
        reorder=0.10,
        reorder_window_ms=200.0,
        jitter_ms=120.0,
        jitter_model="exponential",
    ),
    "null": LinkProfile(),
}


def impairment_profile(name: str) -> LinkProfile:
    """Look up a named profile; raises ``KeyError`` with the catalog."""
    try:
        return IMPAIRMENT_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown impairment profile {name!r}; "
            f"known: {sorted(IMPAIRMENT_PROFILES)}"
        ) from None
