"""``repro.net`` — a deterministic packet-level network simulator.

Provides the substrate the measurement runs on: IPv4/IPv6 packets with
TTL semantics, UDP and ICMP, end hosts with sockets, routers with
longest-prefix-match tables and bogon filtering, NAT, and an
iptables-style firewall with the DNAT action that residential-router
interception is built on.
"""

from .addr import (
    BOGON_V4_PREFIXES,
    BOGON_V6_PREFIXES,
    DEFAULT_BOGON_V4,
    DEFAULT_BOGON_V6,
    PrefixPool,
    is_bogon,
    is_ipv6,
    is_private,
    parse_ip,
)
from .packet import (
    DEFAULT_TTL,
    IcmpData,
    IcmpType,
    Packet,
    Protocol,
    UdpData,
    make_icmp_port_unreachable,
    make_icmp_time_exceeded,
    make_reply,
    make_udp,
)
from .dot import DOT_PORT, DotFrame, is_dot_payload, unwrap_dot, wrap_dot
from .doh import (
    DOH_PORT,
    DohRequest,
    DohResponse,
    is_doh_payload,
    unwrap_doh_query,
    unwrap_doh_response,
    wrap_doh_query,
    wrap_doh_response,
)
from .doq import DOQ_PORT, DoqFrame, is_doq_payload, unwrap_doq, wrap_doq
from .stream import pack_identity, unpack_identity
from .impairment import (
    IMPAIRMENT_PROFILES,
    LinkProfile,
    impairment_profile,
)
from .sim import DEFAULT_LATENCY_MS, Network, Node, SimulationError
from .node import Host, ReceivedDatagram, ReceivedIcmp, UdpSocket
from .router import Route, Router, RoutingTable
from .nat import FlowKey, NatBinding, NatTable
from .firewall import Action, Chain, Match, Rule, Verdict, network, udp53_dnat_rule
from .trace import TraceEvent, TraceRecorder

__all__ = [
    "BOGON_V4_PREFIXES",
    "BOGON_V6_PREFIXES",
    "DEFAULT_BOGON_V4",
    "DEFAULT_BOGON_V6",
    "PrefixPool",
    "is_bogon",
    "is_ipv6",
    "is_private",
    "parse_ip",
    "DEFAULT_TTL",
    "IcmpData",
    "IcmpType",
    "Packet",
    "Protocol",
    "UdpData",
    "make_icmp_port_unreachable",
    "make_icmp_time_exceeded",
    "make_reply",
    "make_udp",
    "DOT_PORT",
    "DotFrame",
    "is_dot_payload",
    "unwrap_dot",
    "wrap_dot",
    "DOH_PORT",
    "DohRequest",
    "DohResponse",
    "is_doh_payload",
    "unwrap_doh_query",
    "unwrap_doh_response",
    "wrap_doh_query",
    "wrap_doh_response",
    "DOQ_PORT",
    "DoqFrame",
    "is_doq_payload",
    "unwrap_doq",
    "wrap_doq",
    "pack_identity",
    "unpack_identity",
    "IMPAIRMENT_PROFILES",
    "LinkProfile",
    "impairment_profile",
    "DEFAULT_LATENCY_MS",
    "Network",
    "Node",
    "SimulationError",
    "Host",
    "ReceivedDatagram",
    "ReceivedIcmp",
    "UdpSocket",
    "Route",
    "Router",
    "RoutingTable",
    "FlowKey",
    "NatBinding",
    "NatTable",
    "Action",
    "Chain",
    "Match",
    "Rule",
    "Verdict",
    "network",
    "udp53_dnat_rule",
    "TraceEvent",
    "TraceRecorder",
]
