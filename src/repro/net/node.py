"""End hosts: the measurement vantage points.

A :class:`Host` owns one or more addresses, sends UDP through a default
gateway, and collects inbound datagrams into sockets. It deliberately has
*no* routing ability and *no* raw-socket powers beyond setting the IP TTL
— mirroring the paper's constraint that the technique "can be implemented
on any device that can make DNS queries, without requiring root access"
(§1), with the TTL extension (§6) as the one privileged add-on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .addr import IPAddress, parse_ip
from .packet import (
    DEFAULT_TTL,
    IcmpType,
    Packet,
    Protocol,
    make_udp,
)
from .sim import Node, SimulationError

#: First ephemeral port handed out by a host.
EPHEMERAL_PORT_BASE = 40000


@dataclass
class ReceivedDatagram:
    """A UDP datagram as seen by a socket, with its claimed source."""

    payload: bytes
    src: IPAddress
    sport: int
    dst: IPAddress
    time: float


@dataclass
class ReceivedIcmp:
    """An ICMP message delivered to the host (for TTL probing)."""

    icmp_type: IcmpType
    reporter: IPAddress
    quoted: Optional[Packet]
    time: float


class UdpSocket:
    """A bound UDP port collecting inbound datagrams."""

    def __init__(self, host: "Host", port: int) -> None:
        self.host = host
        self.port = port
        self.inbox: list[ReceivedDatagram] = []
        self.closed = False

    def sendto(
        self,
        payload: bytes,
        dst: "str | IPAddress",
        dport: int,
        ttl: int = DEFAULT_TTL,
        src: "str | IPAddress | None" = None,
    ) -> Packet:
        """Send ``payload`` from this socket; returns the emitted packet."""
        if self.closed:
            raise SimulationError("socket is closed")
        return self.host.send_udp(self, payload, dst, dport, ttl=ttl, src=src)

    def drain(self) -> list[ReceivedDatagram]:
        """Remove and return everything received so far."""
        out, self.inbox = self.inbox, []
        return out

    def close(self) -> None:
        self.closed = True
        self.host.release_socket(self)


class Host(Node):
    """An end host with UDP sockets, a gateway, and ICMP visibility."""

    def __init__(
        self,
        name: str,
        addresses: "list[str | IPAddress] | None" = None,
        gateway: Optional[str] = None,
        asn: Optional[int] = None,
    ) -> None:
        super().__init__(name, asn=asn)
        self._addresses: set[IPAddress] = {parse_ip(a) for a in (addresses or [])}
        self.gateway = gateway
        self._sockets: dict[int, UdpSocket] = {}
        self._next_port = EPHEMERAL_PORT_BASE
        self.icmp_inbox: list[ReceivedIcmp] = []

    # -- addressing -----------------------------------------------------

    def addresses(self) -> set[IPAddress]:
        return set(self._addresses)

    def add_address(self, address: "str | IPAddress") -> None:
        self._addresses.add(parse_ip(address))
        self.invalidate_addresses()
        if self.network is not None:
            self.network.reindex(self)

    def address_for_family(self, family: int) -> Optional[IPAddress]:
        for address in sorted(self._addresses, key=str):
            if address.version == family:
                return address
        return None

    # -- sockets -----------------------------------------------------------

    def open_socket(self, port: Optional[int] = None) -> UdpSocket:
        if port is None:
            while self._next_port in self._sockets:
                self._next_port += 1
            port = self._next_port
            self._next_port += 1
        if port in self._sockets:
            raise SimulationError(f"port {port} already bound on {self.name}")
        sock = UdpSocket(self, port)
        self._sockets[port] = sock
        return sock

    def release_socket(self, sock: UdpSocket) -> None:
        self._sockets.pop(sock.port, None)

    def send_udp(
        self,
        sock: UdpSocket,
        payload: bytes,
        dst: "str | IPAddress",
        dport: int,
        ttl: int = DEFAULT_TTL,
        src: "str | IPAddress | None" = None,
    ) -> Packet:
        dst = parse_ip(dst)
        if src is None:
            src = self.address_for_family(dst.version)
            if src is None:
                raise SimulationError(
                    f"{self.name} has no IPv{dst.version} address to reach {dst}"
                )
        packet = make_udp(src, sock.port, dst, dport, payload, ttl=ttl)
        self.trace("send", packet, f"socket {sock.port}")
        if self.gateway is None:
            raise SimulationError(f"{self.name} has no gateway")
        self.send(self.gateway, packet)
        return packet

    # -- delivery ------------------------------------------------------------

    def deliver_local(self, packet: Packet) -> None:
        if packet.protocol is Protocol.ICMP:
            assert packet.icmp is not None
            self.icmp_inbox.append(
                ReceivedIcmp(
                    icmp_type=packet.icmp.icmp_type,
                    reporter=packet.src,
                    quoted=packet.icmp.quoted,
                    time=self.network.now if self.network else 0.0,
                )
            )
            self.trace("deliver", packet, "icmp")
            return
        assert packet.udp is not None
        sock = self._sockets.get(packet.udp.dport)
        if sock is None or sock.closed:
            self.trace("drop", packet, f"no socket on port {packet.udp.dport}")
            return
        sock.inbox.append(
            ReceivedDatagram(
                payload=packet.udp.payload,
                src=packet.src,
                sport=packet.udp.sport,
                dst=packet.dst,
                time=self.network.now if self.network else 0.0,
            )
        )
        self.trace("deliver", packet, f"socket {packet.udp.dport}")
