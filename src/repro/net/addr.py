"""Addressing helpers and bogon address space.

The third step of the paper's methodology sends DNS queries to *bogon*
addresses — space that must never be routable on the public Internet
(RFC 1918, the documentation TEST-NETs, CGN space, class E, IPv6 ULA and
documentation prefixes). A query addressed to a bogon cannot leave the
client's AS, so any answer proves an in-AS interceptor.

This module centralises "what counts as a bogon" for both the simulator
(routers have no route to bogons) and the measurement core (which picks
the probe addresses).
"""

from __future__ import annotations

import ipaddress
from typing import Union

IPAddress = Union[ipaddress.IPv4Address, ipaddress.IPv6Address]
IPNetwork = Union[ipaddress.IPv4Network, ipaddress.IPv6Network]

#: IPv4 prefixes that must not appear on the public Internet.
BOGON_V4_PREFIXES: tuple[ipaddress.IPv4Network, ...] = tuple(
    ipaddress.IPv4Network(p)
    for p in (
        "0.0.0.0/8",
        "10.0.0.0/8",
        "100.64.0.0/10",  # carrier-grade NAT (RFC 6598)
        "127.0.0.0/8",
        "169.254.0.0/16",
        "172.16.0.0/12",
        "192.0.0.0/24",
        "192.0.2.0/24",  # TEST-NET-1
        "192.168.0.0/16",
        "198.18.0.0/15",  # benchmarking
        "198.51.100.0/24",  # TEST-NET-2
        "203.0.113.0/24",  # TEST-NET-3
        "240.0.0.0/4",  # class E
    )
)

#: IPv6 prefixes that must not appear on the public Internet.
BOGON_V6_PREFIXES: tuple[ipaddress.IPv6Network, ...] = tuple(
    ipaddress.IPv6Network(p)
    for p in (
        "::/8",
        "100::/64",  # discard-only
        "2001:db8::/32",  # documentation
        "fc00::/7",  # ULA
        "fe80::/10",  # link-local
    )
)

#: The concrete bogon destinations the measurement uses (one per family),
#: mirroring the paper's "one IPv4 and one IPv6 bogon address" (§3.3).
DEFAULT_BOGON_V4 = ipaddress.IPv4Address("192.0.2.53")
DEFAULT_BOGON_V6 = ipaddress.IPv6Address("2001:db8::53")


#: String -> address memo for :func:`parse_ip`. The hot path parses the
#: same few dozen literals (provider anycast addresses, gateway/bogon
#: constants) once per packet hop; ip_address() re-tokenises every time.
#: Address objects are immutable, so sharing them is safe. Bounded;
#: cleared when full.
_PARSE_CACHE: dict[str, IPAddress] = {}
_PARSE_CACHE_MAX = 4096


def parse_ip(value: "str | IPAddress") -> IPAddress:
    """Coerce ``value`` to an address object (identity for address input)."""
    if isinstance(value, (ipaddress.IPv4Address, ipaddress.IPv6Address)):
        return value
    hit = _PARSE_CACHE.get(value)
    if hit is None:
        hit = ipaddress.ip_address(value)
        if len(_PARSE_CACHE) >= _PARSE_CACHE_MAX:
            _PARSE_CACHE.clear()
        _PARSE_CACHE[value] = hit
    return hit


def is_ipv6(value: "str | IPAddress") -> bool:
    return parse_ip(value).version == 6


#: Bogon classification memo: the border router checks every packet it
#: forwards against the same handful of addresses, and prefix membership
#: is pure in the address. Bounded; cleared when full.
_BOGON_CACHE: dict[IPAddress, bool] = {}
_BOGON_CACHE_MAX = 4096


def is_bogon(value: "str | IPAddress") -> bool:
    """True if ``value`` falls in unroutable (bogon) space."""
    address = parse_ip(value)
    hit = _BOGON_CACHE.get(address)
    if hit is None:
        prefixes = BOGON_V4_PREFIXES if address.version == 4 else BOGON_V6_PREFIXES
        hit = any(address in prefix for prefix in prefixes)
        if len(_BOGON_CACHE) >= _BOGON_CACHE_MAX:
            _BOGON_CACHE.clear()
        _BOGON_CACHE[address] = hit
    return hit


def is_private(value: "str | IPAddress") -> bool:
    """True for RFC 1918 / ULA space (a subset of bogons)."""
    return parse_ip(value).is_private


class PrefixPool:
    """Sequential allocator of host addresses from a prefix.

    Used to hand out public WAN addresses inside an ISP's prefix and
    private LAN subnets inside homes. Allocation is deterministic, which
    keeps the whole pilot study reproducible under a fixed seed.
    """

    def __init__(self, prefix: "str | IPNetwork", first_offset: int = 1) -> None:
        self.prefix = (
            prefix
            if isinstance(prefix, (ipaddress.IPv4Network, ipaddress.IPv6Network))
            else ipaddress.ip_network(prefix)
        )
        self._next = first_offset
        self._capacity = self.prefix.num_addresses

    def allocate(self) -> IPAddress:
        """Return the next unused host address in the prefix."""
        if self._next >= self._capacity - (1 if self.prefix.version == 4 else 0):
            raise RuntimeError(f"prefix {self.prefix} exhausted")
        address = self.prefix.network_address + self._next
        self._next += 1
        return address

    def allocate_subnet(self, new_prefix_len: int) -> IPNetwork:
        """Carve the next aligned subnet of the requested length."""
        step = 2 ** (self.prefix.max_prefixlen - new_prefix_len)
        # Round the cursor up to subnet alignment.
        start = (self._next + step - 1) // step * step
        if start + step > self._capacity:
            raise RuntimeError(f"prefix {self.prefix} exhausted for /{new_prefix_len}")
        self._next = start + step
        network_address = self.prefix.network_address + start
        return ipaddress.ip_network(f"{network_address}/{new_prefix_len}")

    def __contains__(self, value: "str | IPAddress") -> bool:
        address = parse_ip(value)
        return address.version == self.prefix.version and address in self.prefix
