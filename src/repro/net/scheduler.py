"""Event schedulers for the simulator core.

Two implementations of one priority-queue contract over event entries
``(time_us, seq, fn, arg)``:

* :class:`HeapScheduler` — a plain binary heap; the reference engine.
* :class:`CalendarScheduler` — a bucketed calendar queue sized for the
  simulator's traffic shape (bursts of near-future events a few hundred
  microseconds apart), with a binary heap as overflow for events beyond
  the bucket window. This is the fast engine's scheduler.

Both order strictly by ``(time_us, seq)``; given the same pushes they pop
the same sequence, which is what lets the fast engine keep the simulator's
byte-identical determinism contract.

Integer-microsecond contract: event times are non-negative integers in
microseconds. :meth:`repro.net.sim.Network.schedule` quantises float
millisecond delays with ``round(delay_ms * 1000)`` at the boundary, so no
float ever enters a comparison between events.
"""

from __future__ import annotations

import heapq
from typing import Optional

#: An event entry: (absolute time in µs, tie-break sequence, callable, arg).
#: ``arg`` is passed to ``fn`` when not None; comparisons never reach the
#: callable because ``seq`` is unique.
Entry = tuple

#: Calendar geometry. 256 µs buckets x 512 slots ≈ a 131 ms window —
#: wider than any single link latency plus jitter in the topology, so the
#: overflow heap only sees retry timers and similar far-future events.
_BUCKET_WIDTH_US = 256
_BUCKET_COUNT = 512


class HeapScheduler:
    """Reference scheduler: a single binary heap of entries."""

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: list[Entry] = []

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, entry: Entry) -> None:
        heapq.heappush(self._heap, entry)

    def pop_due(self, limit_us: Optional[int]) -> Optional[Entry]:
        """Pop and return the earliest entry with time <= ``limit_us``.

        Returns None when the queue is empty or the earliest entry lies
        beyond the limit (``limit_us=None`` means no limit).
        """
        heap = self._heap
        if not heap:
            return None
        if limit_us is not None and heap[0][0] > limit_us:
            return None
        return heapq.heappop(heap)

    def clear(self) -> None:
        self._heap.clear()


class CalendarScheduler:
    """Calendar queue: an array of bucket heaps plus an overflow heap.

    ``_base`` is the absolute bucket index (``time_us >> shift``) of the
    cursor; every bucketed entry's index lies in ``[_base, _base + size)``
    (the *window invariant*), so the pop scan walks forward from the
    cursor and the first non-empty bucket's heap top is the global
    minimum. Entries beyond the window go to the overflow heap and
    migrate into buckets as the cursor advances.

    The cursor can also move *backwards*: after an overflow jump, a
    ``run(until=...)`` boundary may leave the simulation clock behind the
    cursor, and the next push can be earlier than ``_base``. ``_rewind``
    restores the window invariant by spilling entries that the shrunken
    window can no longer hold back into the overflow heap.
    """

    __slots__ = (
        "_buckets",
        "_mask",
        "_shift",
        "_size",
        "_base",
        "_overflow",
        "_count",
        "_window_count",
    )

    def __init__(
        self,
        bucket_width_us: int = _BUCKET_WIDTH_US,
        bucket_count: int = _BUCKET_COUNT,
    ) -> None:
        if bucket_width_us & (bucket_width_us - 1) or bucket_width_us <= 0:
            raise ValueError("bucket_width_us must be a power of two")
        if bucket_count & (bucket_count - 1) or bucket_count <= 0:
            raise ValueError("bucket_count must be a power of two")
        self._shift = bucket_width_us.bit_length() - 1
        self._size = bucket_count
        self._mask = bucket_count - 1
        self._buckets: list[list[Entry]] = [[] for _ in range(bucket_count)]
        self._base = 0
        self._overflow: list[Entry] = []
        self._count = 0
        self._window_count = 0

    def __len__(self) -> int:
        return self._count

    def push(self, entry: Entry) -> None:
        index = entry[0] >> self._shift
        if self._count == 0:
            # Empty queue: park the window wherever the event lands.
            self._base = index
        elif index < self._base:
            self._rewind(index)
        if index < self._base + self._size:
            heapq.heappush(self._buckets[index & self._mask], entry)
            self._window_count += 1
        else:
            heapq.heappush(self._overflow, entry)
        self._count += 1

    def _rewind(self, index: int) -> None:
        """Move the cursor back to ``index``, restoring the invariant.

        Bucket positions that the new, earlier window re-claims may hold
        entries from indices at the far end of the old window; those no
        longer fit and are spilled to the overflow heap.
        """
        overflow = self._overflow
        span = min(self._base - index, self._size)
        for offset in range(span):
            bucket = self._buckets[(index + offset) & self._mask]
            if bucket:
                self._window_count -= len(bucket)
                for entry in bucket:
                    heapq.heappush(overflow, entry)
                del bucket[:]
        self._base = index

    def _migrate(self) -> None:
        """Pull overflow entries that now fit the window into buckets."""
        overflow = self._overflow
        shift = self._shift
        limit = self._base + self._size
        while overflow and (overflow[0][0] >> shift) < limit:
            entry = heapq.heappop(overflow)
            heapq.heappush(self._buckets[(entry[0] >> shift) & self._mask], entry)
            self._window_count += 1

    def pop_due(self, limit_us: Optional[int]) -> Optional[Entry]:
        """Pop and return the earliest entry with time <= ``limit_us``.

        Returns None when the queue is empty or the earliest entry lies
        beyond the limit (``limit_us=None`` means no limit). May advance
        the cursor past empty buckets even when returning None.
        """
        if self._count == 0:
            return None
        if self._window_count == 0:
            # Everything pending is far-future: jump straight to the
            # overflow minimum instead of scanning empty buckets.
            self._base = self._overflow[0][0] >> self._shift
        self._migrate()
        buckets = self._buckets
        mask = self._mask
        base = self._base
        while True:
            bucket = buckets[base & mask]
            if bucket:
                self._base = base
                if limit_us is not None and bucket[0][0] > limit_us:
                    return None
                self._window_count -= 1
                self._count -= 1
                return heapq.heappop(bucket)
            base += 1
            if self._overflow and (self._overflow[0][0] >> self._shift) < base + self._size:
                self._base = base
                self._migrate()

    def clear(self) -> None:
        for bucket in self._buckets:
            del bucket[:]
        self._overflow.clear()
        self._base = 0
        self._count = 0
        self._window_count = 0


def make_scheduler(kind: str) -> "HeapScheduler | CalendarScheduler":
    """Build a scheduler by engine name (``calendar`` or ``heap``)."""
    if kind == "calendar":
        return CalendarScheduler()
    if kind == "heap":
        return HeapScheduler()
    raise ValueError(f"unknown scheduler kind: {kind!r}")
