"""DNS-over-HTTPS framing for the simulator (RFC 8484, abstracted).

DoH rides HTTP/2 inside TLS on port 443. The simulator keeps the two
properties an on-path interceptor can act on and a client can verify:

- the **server name the client dialed** (the TLS SNI / ``:authority``
  pseudo-header) travels in the request frame, so a middlebox can match
  per-SNI — the only per-flow signal DoH leaks, since the port is shared
  with all other HTTPS traffic;
- the **certificate identity the server presented** travels in the
  response frame, so the client can detect a terminating proxy exactly
  as with DoT.

Both RFC 8484 wire shapes are modelled: ``GET`` carries the DNS message
base64url-encoded without padding (the ``?dns=`` query parameter) and
``POST`` carries the raw ``application/dns-message`` bytes. Responses
carry an HTTP status next to the DNS payload.
"""

from __future__ import annotations

import base64
from dataclasses import dataclass
from typing import Optional

from .stream import pack_identity, unpack_identity

#: HTTPS port (RFC 8484: DoH is indistinguishable from other HTTPS).
DOH_PORT = 443

_MAGIC = b"DoH1"
_METHODS = {"GET": ord("G"), "POST": ord("P")}
_METHOD_BYTES = {v: k for k, v in _METHODS.items()}
#: Marker byte distinguishing response frames from request frames.
_RESPONSE = ord("R")


def _b64url_encode(payload: bytes) -> bytes:
    return base64.urlsafe_b64encode(payload).rstrip(b"=")


def _b64url_decode(data: bytes) -> Optional[bytes]:
    pad = -len(data) % 4
    try:
        return base64.urlsafe_b64decode(data + b"=" * pad)
    except (ValueError, TypeError):
        return None


@dataclass(frozen=True)
class DohRequest:
    """One DoH request: dialed authority, HTTP method, DNS query bytes."""

    authority: str
    method: str
    dns_payload: bytes

    def encode(self) -> bytes:
        method = _METHODS.get(self.method)
        if method is None:
            raise ValueError(f"unknown DoH method {self.method!r}")
        body = (
            _b64url_encode(self.dns_payload)
            if self.method == "GET"
            else self.dns_payload
        )
        return _MAGIC + bytes([method]) + pack_identity(self.authority) + body


@dataclass(frozen=True)
class DohResponse:
    """One DoH response: certificate identity, HTTP status, DNS bytes."""

    server_identity: str
    status: int
    dns_payload: bytes

    def encode(self) -> bytes:
        if not 100 <= self.status <= 599:
            raise ValueError(f"implausible HTTP status {self.status}")
        return (
            _MAGIC
            + bytes([_RESPONSE])
            + self.status.to_bytes(2, "big")
            + pack_identity(self.server_identity)
            + self.dns_payload
        )


def wrap_doh_query(dns_payload: bytes, authority: str, method: str = "POST") -> bytes:
    """Frame ``dns_payload`` as a DoH request to ``authority``."""
    return DohRequest(authority, method, dns_payload).encode()


def wrap_doh_response(dns_payload: bytes, server_identity: str, status: int = 200) -> bytes:
    """Frame ``dns_payload`` as a DoH response served by ``server_identity``."""
    return DohResponse(server_identity, status, dns_payload).encode()


def unwrap_doh_query(data: bytes) -> Optional[DohRequest]:
    """Parse a DoH request frame; None if ``data`` is not one.

    The GET body is base64url-decoded here, so ``dns_payload`` is always
    raw DNS wire regardless of method.
    """
    if len(data) < len(_MAGIC) + 1 or not data.startswith(_MAGIC):
        return None
    method = _METHOD_BYTES.get(data[len(_MAGIC)])
    if method is None:
        return None
    unpacked = unpack_identity(data, len(_MAGIC) + 1)
    if unpacked is None:
        return None
    authority, start = unpacked
    body = data[start:]
    if method == "GET":
        decoded = _b64url_decode(body)
        if decoded is None:
            return None
        body = decoded
    return DohRequest(authority, method, body)


def unwrap_doh_response(data: bytes) -> Optional[DohResponse]:
    """Parse a DoH response frame; None if ``data`` is not one."""
    if len(data) < len(_MAGIC) + 3 or not data.startswith(_MAGIC):
        return None
    if data[len(_MAGIC)] != _RESPONSE:
        return None
    status = int.from_bytes(data[len(_MAGIC) + 1 : len(_MAGIC) + 3], "big")
    unpacked = unpack_identity(data, len(_MAGIC) + 3)
    if unpacked is None:
        return None
    identity, start = unpacked
    return DohResponse(identity, status, data[start:])


def is_doh_payload(data: bytes) -> bool:
    return data.startswith(_MAGIC)
