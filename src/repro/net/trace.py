"""Packet tracing: a capture of everything that happens on the wire.

The XB6 case study (§5 of the paper) hinges on *seeing the mechanism*:
the DNAT rewrite of a query addressed to 8.8.8.8 into a query addressed
to the ISP resolver, answered with a spoofed source. ``TraceRecorder``
captures per-hop events so examples and benchmarks can print exactly
that story.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from .packet import Packet


@dataclass(frozen=True)
class TraceEvent:
    """One observed event in the network."""

    time: float
    node: str
    action: str  # "send" | "forward" | "deliver" | "drop" | "rewrite" | "intercept"
    packet: Packet
    detail: str = ""

    def format(self) -> str:
        detail = f"  ({self.detail})" if self.detail else ""
        return f"[{self.time:8.3f}ms] {self.node:<22} {self.action:<9} {self.packet.describe()}{detail}"


class TraceRecorder:
    """Collects :class:`TraceEvent` records; can be scoped to one packet's lineage."""

    def __init__(self, enabled: bool = True, limit: int = 100_000) -> None:
        self.enabled = enabled
        self.limit = limit
        self.events: list[TraceEvent] = []

    def record(
        self, time: float, node: str, action: str, packet: Packet, detail: str = ""
    ) -> None:
        if not self.enabled or len(self.events) >= self.limit:
            return
        self.events.append(TraceEvent(time, node, action, packet, detail))

    def clear(self) -> None:
        self.events.clear()

    def for_lineage(self, packet: Packet) -> list[TraceEvent]:
        """Events involving ``packet`` or any rewrite descended from it."""
        family = {packet.uid}
        out: list[TraceEvent] = []
        for event in self.events:
            ids = {event.packet.uid, *event.packet.lineage}
            if ids & family:
                family.add(event.packet.uid)
                out.append(event)
        return out

    def filter(
        self,
        node: Optional[str] = None,
        action: Optional[str] = None,
    ) -> list[TraceEvent]:
        return [
            event
            for event in self.events
            if (node is None or event.node == node)
            and (action is None or event.action == action)
        ]

    def format(self, events: Optional[Iterable[TraceEvent]] = None) -> str:
        return "\n".join(event.format() for event in (events or self.events))

    def __len__(self) -> int:
        return len(self.events)
