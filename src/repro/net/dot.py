"""DNS-over-TLS framing for the simulator (RFC 7858, abstracted).

The paper's §6 observes that the technique *should* detect DoT
interception — but only the **opportunistic privacy profile** is
interceptable at all: it "disables client certificate validation, so
this configuration could allow interception", while the strict profile
(and DoH) defeats on-path hijacking outright.

The simulator abstracts the TLS handshake to its one security-relevant
outcome: *whose certificate did the client see?* A DoT payload is the
DNS message prefixed with the serving resolver's authenticated identity.
An interceptor can terminate the session and answer — but it cannot
forge the target resolver's identity, so the frame it returns carries
the *alternate* resolver's name. A strict-profile client compares the
identity against the name it dialed and rejects mismatches; an
opportunistic client accepts whatever it got. That is exactly the
real-world trust calculus, minus the cryptography.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .stream import pack_identity, unpack_identity

#: DNS-over-TLS port (RFC 7858).
DOT_PORT = 853

_MAGIC = b"DoT1"


@dataclass(frozen=True)
class DotFrame:
    """An abstracted DoT record: authenticated server identity + DNS bytes.

    Client->server frames carry the *dialed* server name in the same
    field (the SNI an on-path box could match on); server->client frames
    carry the certificate identity the client authenticated.
    """

    server_identity: str
    dns_payload: bytes

    def encode(self) -> bytes:
        return _MAGIC + pack_identity(self.server_identity) + self.dns_payload


def wrap_dot(dns_payload: bytes, server_identity: str) -> bytes:
    """Frame ``dns_payload`` as served by ``server_identity``."""
    return DotFrame(server_identity, dns_payload).encode()


def unwrap_dot(data: bytes) -> Optional[DotFrame]:
    """Parse a DoT frame; None if ``data`` is not one."""
    if not data.startswith(_MAGIC):
        return None
    unpacked = unpack_identity(data, len(_MAGIC))
    if unpacked is None:
        return None
    identity, start = unpacked
    return DotFrame(identity, data[start:])


def is_dot_payload(data: bytes) -> bool:
    return data.startswith(_MAGIC)
