"""DNS-over-QUIC framing for the simulator (RFC 9250, abstracted).

DoQ shares port 853 with DoT; the simulator disambiguates the two by
frame magic, the way a real stack disambiguates by the transport
protocol underneath (QUIC/UDP vs TLS/TCP).

Two RFC 9250 semantics survive the abstraction because interceptors and
clients can observe them:

- **per-query streams**: each query runs on its own QUIC stream and a
  stream carries exactly one query/response pair. A client opens stream
  0 on a fresh connection per query; the server echoes the stream id. A
  terminating proxy that sees the *same* stream id reused on one
  connection is looking at a protocol violation and resets the stream —
  state a faithful proxy must track per connection.
- **no TC retry**: RFC 9250 §4.3 forbids the TC bit — a truncated
  response over DoQ is a protocol error, so the client discards it
  rather than retrying over TCP.

As with DoT/DoH, client frames carry the dialed server name (the SNI an
on-path box can match) and server frames carry the certificate identity
the client authenticated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .stream import pack_identity, unpack_identity

#: DoQ shares the DoT port (RFC 9250 §8: the "doq" ALPN on UDP/853).
DOQ_PORT = 853

_MAGIC = b"DoQ1"


@dataclass(frozen=True)
class DoqFrame:
    """One DoQ stream payload: stream id, identity/SNI, DNS bytes."""

    stream_id: int
    server_identity: str
    dns_payload: bytes

    def encode(self) -> bytes:
        if not 0 <= self.stream_id <= 0xFFFF:
            raise ValueError(f"stream id out of range: {self.stream_id}")
        return (
            _MAGIC
            + self.stream_id.to_bytes(2, "big")
            + pack_identity(self.server_identity)
            + self.dns_payload
        )


def wrap_doq(dns_payload: bytes, server_identity: str, stream_id: int = 0) -> bytes:
    """Frame ``dns_payload`` on ``stream_id`` for/by ``server_identity``."""
    return DoqFrame(stream_id, server_identity, dns_payload).encode()


def unwrap_doq(data: bytes) -> Optional[DoqFrame]:
    """Parse a DoQ frame; None if ``data`` is not one."""
    if len(data) < len(_MAGIC) + 2 or not data.startswith(_MAGIC):
        return None
    stream_id = int.from_bytes(data[len(_MAGIC) : len(_MAGIC) + 2], "big")
    unpacked = unpack_identity(data, len(_MAGIC) + 2)
    if unpacked is None:
        return None
    identity, start = unpacked
    return DoqFrame(stream_id, identity, data[start:])


def is_doq_payload(data: bytes) -> bool:
    return data.startswith(_MAGIC)
