"""Ambiguity-probe interceptor fingerprinting.

The paper's Step 2 names interceptor software from ``version.bind`` —
but an interceptor that lies (or answers nothing) defeats it. This
package implements the complementary *behavioural* fingerprint: six
crafted queries that real DNS implementations handle differently
(mixed-case qnames, TC-set queries, two-question messages with a
compression pointer, unknown EDNS options, odd opcodes, overlapping
retransmissions with divergent payloads) are sent through the already
established interception path, and the reaction vector is matched
against a database of known software signatures.

Layout:

``probes``
    The six probe builders and the per-probe token extractors.
``engine``
    Raw socket exchanges through a live scenario; turns a destination
    into a six-token signature.
``signature``
    Predicted signatures for every personality, the signature database
    (pairwise-distinct, checked at build time), and ground truth.
"""

from .engine import run_ambiguity_probes
from .probes import PROBE_AXES, UNKNOWN_OPTION_CODE
from .signature import (
    PROVIDER_DEFAULT_SIGNATURE,
    SignatureDatabase,
    block_label,
    build_signature_database,
    expected_signature,
    true_software_label,
)

__all__ = [
    "PROBE_AXES",
    "PROVIDER_DEFAULT_SIGNATURE",
    "SignatureDatabase",
    "UNKNOWN_OPTION_CODE",
    "block_label",
    "build_signature_database",
    "expected_signature",
    "run_ambiguity_probes",
    "true_software_label",
]
