"""Run the ambiguity probes through a live scenario.

The exchanges here are deliberately *raw*: unlike
:func:`repro.atlas.transport.udp53_exchange` there is no retry policy
and no TC-bit special-casing — a fingerprint probe's whole point is to
observe the first reaction, whatever it is. Source, port and id are
still validated so off-path junk cannot pollute a token.
"""

from __future__ import annotations

from typing import Optional

from repro.atlas.measurement import MeasurementClient
from repro.dnswire import DNS_PORT, Message, decode_or_none
from repro.net.addr import IPAddress, parse_ip

from .probes import (
    CASE_MSG_ID,
    EDNS_MSG_ID,
    OPCODE_MSG_ID,
    OVERLAP_MSG_ID,
    QDCOUNT_MSG_ID,
    TC_MSG_ID,
    case_probe_wire,
    case_token,
    edns_probe_wire,
    edns_token,
    opcode_probe_wire,
    opcode_token,
    overlap_probe_wires,
    overlap_token,
    qdcount_probe_wire,
    qdcount_token,
    tc_probe_wire,
    tc_token,
)


def _exchange_raw(
    client: MeasurementClient,
    wire: bytes,
    destination: IPAddress,
    msg_id: int,
) -> Optional[Message]:
    """Send one raw probe wire and return the first valid response."""
    network = client.network
    sock = client.host.open_socket()
    try:
        sock.sendto(wire, destination, DNS_PORT)
        network.run(until=network.now + client.timeout_ms)
        for datagram in sock.drain():
            if datagram.src != destination or datagram.sport != DNS_PORT:
                continue
            message = decode_or_none(datagram.payload)
            if message is None or not message.is_response or message.msg_id != msg_id:
                continue
            return message
        return None
    finally:
        sock.close()


def _exchange_overlap(
    client: MeasurementClient, destination: IPAddress
) -> "set[str]":
    """Send the two same-id divergent transmissions on one socket and
    collect the lowercased qnames of every valid response."""
    first, second = overlap_probe_wires()
    network = client.network
    sock = client.host.open_socket()
    answered: set[str] = set()
    try:
        sock.sendto(first, destination, DNS_PORT)
        sock.sendto(second, destination, DNS_PORT)
        network.run(until=network.now + client.timeout_ms)
        for datagram in sock.drain():
            if datagram.src != destination or datagram.sport != DNS_PORT:
                continue
            message = decode_or_none(datagram.payload)
            if (
                message is None
                or not message.is_response
                or message.msg_id != OVERLAP_MSG_ID
                or message.question is None
            ):
                continue
            answered.add(message.question.qname.to_text().lower())
        return answered
    finally:
        sock.close()


def run_ambiguity_probes(
    client: MeasurementClient, destination: "str | IPAddress"
) -> tuple[str, ...]:
    """Send all six probes to ``destination`` and return the signature.

    The result is a 6-tuple of tokens in :data:`~repro.fingerprint.probes.PROBE_AXES`
    order. Probes run sequentially on fresh sockets; everything about
    them (ids, spellings, order) is deterministic.
    """
    destination = parse_ip(destination)
    return (
        case_token(_exchange_raw(client, case_probe_wire(), destination, CASE_MSG_ID)),
        tc_token(_exchange_raw(client, tc_probe_wire(), destination, TC_MSG_ID)),
        qdcount_token(
            _exchange_raw(client, qdcount_probe_wire(), destination, QDCOUNT_MSG_ID)
        ),
        edns_token(_exchange_raw(client, edns_probe_wire(), destination, EDNS_MSG_ID)),
        opcode_token(
            _exchange_raw(client, opcode_probe_wire(), destination, OPCODE_MSG_ID)
        ),
        overlap_token(_exchange_overlap(client, destination)),
    )
