"""Signature prediction, the signature database, and ground truth.

A *signature* is the 6-token reaction vector the probe engine observes
(:data:`~repro.fingerprint.probes.PROBE_AXES` order). This module
predicts the signature every modelled personality produces in each
interception role, collects them into a database that refuses to build
if any two personalities collide, and derives the ground-truth software
label for a probe spec — the confusion study's diagonal.

Roles matter for two reasons. A CPE *forwarder* relays what it does not
answer locally, so its ``overlap`` handling (duplicate-id suppression)
is visible; a *resolver* reached through a middlebox redirect is
stateless per query and always answers both overlapping transmissions.
And a REPLICATE middlebox races its resolver's copy against the genuine
provider answer, so any token the resolver would *drop* is backfilled
by the provider's default reaction.
"""

from __future__ import annotations

from typing import Optional

from repro.dnswire import RCode
from repro.net import is_bogon
from repro.net.addr import IPAddress, parse_ip
from repro.resolvers.ambiguity import AmbiguityProfile
from repro.resolvers.software import silent_forwarder

from .probes import PROBE_AXES

#: What the public providers (default ambiguity profile, stateless)
#: answer: everything served, unknown options silently not echoed.
PROVIDER_DEFAULT_SIGNATURE: tuple[str, ...] = (
    "echo",
    "served",
    "served:q2",
    "opt-absent",
    "served",
    "all",
)

#: What a DROP middlebox produces: silence on every axis.
DROP_SIGNATURE: tuple[str, ...] = ("drop",) * len(PROBE_AXES)
DROP_LABEL = "dropping middlebox"

_RCODE_BY_NAME = {
    "formerr": int(RCode.FORMERR),
    "servfail": int(RCode.SERVFAIL),
    "notimp": int(RCode.NOTIMP),
    "refused": int(RCode.REFUSED),
}


def _react(value: str, served_token: str) -> str:
    """Token for one profile axis: pass serves, drop silences, the
    rest name the error status."""
    if value == "pass":
        return served_token
    if value == "drop":
        return "drop"
    return f"rcode:{_RCODE_BY_NAME[value]}"


def expected_signature(
    profile: AmbiguityProfile, role: str = "forwarder"
) -> tuple[str, ...]:
    """Predict the signature ``profile`` produces in ``role``.

    ``role`` is ``"forwarder"`` (CPE interception: local reactions,
    pass-through axes relayed upstream) or ``"resolver"`` (middlebox
    redirect target: same local reactions, but per-query statelessness
    means overlapping transmissions are always both answered).

    A ``pass`` on the tc/qdcount/opcode axes predicts ``served`` — for a
    forwarder that is only sound when the upstream also serves, which is
    why every interceptor-capable personality in
    :mod:`repro.resolvers.software` reacts locally on those axes.
    """
    if role not in ("forwarder", "resolver"):
        raise ValueError(f"unknown fingerprint role {role!r}")
    if profile.edns_unknown == "echo":
        edns = "opt-echo"
    elif profile.edns_unknown in ("pass", "strip"):
        edns = "opt-absent"
    else:
        edns = _react(profile.edns_unknown, "opt-absent")
    if role == "resolver":
        overlap = "all"
    else:
        overlap = "first" if profile.overlap == "first" else "all"
    return (
        profile.case,
        _react(profile.tc_query, "served"),
        _react(profile.multi_question, "served:q2"),
        edns,
        _react(profile.odd_opcode, "served"),
        overlap,
    )


def replicate_signature(resolver_signature: tuple[str, ...]) -> tuple[str, ...]:
    """Compose a REPLICATE middlebox's signature from its resolver's.

    The injected resolver answer arrives first (it is closer), so its
    token wins on every axis it answers; only axes the resolver *drops*
    fall through to the genuine provider's default reaction.
    """
    return tuple(
        default if token == "drop" else token
        for token, default in zip(resolver_signature, PROVIDER_DEFAULT_SIGNATURE)
    )


def block_signature(block_rcode: int) -> tuple[str, ...]:
    """A BLOCK middlebox answers its rcode to everything it decodes,
    echoing the question (case included) as errors do."""
    token = f"rcode:{int(block_rcode)}"
    return ("echo", token, token, token, token, "all")


def block_label(block_rcode: int) -> str:
    return f"blocking middlebox ({RCode.label(block_rcode)})"


class SignatureDatabase:
    """Signature -> software label, collision-checked at construction."""

    def __init__(self) -> None:
        self._by_signature: dict[tuple[str, ...], str] = {}

    def add(self, signature: tuple[str, ...], label: str) -> None:
        existing = self._by_signature.get(signature)
        if existing is not None and existing != label:
            raise ValueError(
                f"ambiguity signature collision: {signature!r} maps to both "
                f"{existing!r} and {label!r}"
            )
        self._by_signature[signature] = label

    def identify(self, signature: tuple[str, ...]) -> Optional[str]:
        return self._by_signature.get(tuple(signature))

    def __len__(self) -> int:
        return len(self._by_signature)

    def entries(self) -> "list[tuple[tuple[str, ...], str]]":
        return sorted(self._by_signature.items())


def _cpe_softwares():
    """Every software personality a CPE in the population can run."""
    from repro.cpe.firmware import TABLE5_SOFTWARE_MIX

    softwares = [software for software, _count in TABLE5_SOFTWARE_MIX]
    softwares.append(silent_forwarder())
    return softwares


def build_signature_database() -> SignatureDatabase:
    """Predict and collect every personality's signatures.

    Raises :class:`ValueError` if any two personalities would be
    indistinguishable — the property the classifier depends on, enforced
    where the profiles are assembled rather than discovered in the
    field.
    """
    from repro.atlas.scenario import _RESOLVER_SOFTWARE_FACTORIES

    db = SignatureDatabase()
    for software in _cpe_softwares():
        db.add(expected_signature(software.ambiguity, role="forwarder"), software.label)
    for key in sorted(_RESOLVER_SOFTWARE_FACTORIES):
        software = _RESOLVER_SOFTWARE_FACTORIES[key]()
        resolver_sig = expected_signature(software.ambiguity, role="resolver")
        db.add(resolver_sig, software.label)
        db.add(replicate_signature(resolver_sig), software.label)
    for rcode in (RCode.REFUSED, RCode.SERVFAIL, RCode.NOTIMP):
        db.add(block_signature(rcode), block_label(rcode))
    db.add(DROP_SIGNATURE, DROP_LABEL)
    return db


# -- ground truth ---------------------------------------------------------


def _policy_matches(policy, destination: IPAddress, family: int) -> bool:
    """Mirror of :meth:`InterceptionPolicy.matches` for a bare address."""
    if not policy.plaintext:
        return False
    if family not in policy.families:
        return False
    if destination in policy.allowed:
        return False
    if is_bogon(destination):
        return policy.intercept_bogons
    if policy.targets is not None and destination not in policy.targets:
        return False
    return True


def _policy_label(policy, resolver_label: str) -> str:
    from repro.interceptors.policy import InterceptMode

    if policy.mode is InterceptMode.BLOCK:
        return block_label(policy.block_rcode)
    if policy.mode is InterceptMode.DROP:
        return DROP_LABEL
    # REDIRECT and REPLICATE both surface the alternate resolver's code
    # base (REPLICATE's composition keeps the resolver's tokens wherever
    # it answers).
    return resolver_label


def true_software_label(
    spec, destination: "str | IPAddress", family: int
) -> Optional[str]:
    """The software actually answering hijacked queries to
    ``destination`` for the probe described by ``spec`` — first
    interceptor on the path wins (CPE, then ISP middlebox, then the
    external transit interceptor). None when nothing intercepts.
    """
    from repro.atlas.scenario import resolver_software
    from repro.resolvers.software import unbound

    destination = parse_ip(destination)
    firmware = spec.firmware
    intercepts = firmware.intercepts_v4 if family == 4 else firmware.intercepts_v6
    if firmware.software is not None and intercepts:
        return firmware.software.label
    for policy in spec.isp.middlebox_policies:
        if _policy_matches(policy, destination, family):
            return _policy_label(
                policy, resolver_software(spec.isp.resolver_software_key).label
            )
    for policy in spec.external_policies:
        if _policy_matches(policy, destination, family):
            # The external interceptor's off-AS resolver (see
            # repro.atlas.scenario.build_scenario).
            return _policy_label(policy, unbound("1.13.1").label)
    return None
