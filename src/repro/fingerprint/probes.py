"""The six ambiguity probes and their response-token extractors.

Every probe targets a name that exists in the simulated directory
(``www.example.com`` / ``example.com``), so a pass-through path serves a
real answer and the token reflects the *interceptor's* handling, not a
resolution failure. Message ids are fixed constants: the probes must be
byte-identical across runs, worker counts and engines.

Token vocabulary (one axis per probe, in :data:`PROBE_AXES` order):

``case``
    ``echo`` (0x20 mixed case preserved), ``lower`` (qname folded),
    ``other`` (respelled some third way), ``drop``.
``tc``
    ``served`` (benign rcode), ``rcode:N``, ``drop``.
``qdcount``
    ``served:qN`` (benign, N echoed questions), ``rcode:N``, ``drop``.
``edns``
    ``opt-echo`` (unknown option returned), ``opt-absent`` (served
    without it), ``rcode:N``, ``drop``.
``opcode``
    ``served``, ``rcode:N``, ``drop``.
``overlap``
    ``all`` (both divergent retransmissions answered), ``first``,
    ``second``, ``drop``.
"""

from __future__ import annotations

from typing import Optional

from repro.dnswire import Message, Opcode, QType, RCode
from repro.dnswire.ambiguity import (
    mixed_case,
    mixed_case_query,
    odd_opcode_query,
    tc_query,
    two_question_wire,
)
from repro.dnswire.edns import EdnsOption, get_edns, with_edns
from repro.dnswire.message import make_query

#: Axis names, in probe order. Signatures are 6-tuples in this order.
PROBE_AXES: tuple[str, ...] = ("case", "tc", "qdcount", "edns", "opcode", "overlap")

#: An option code from the reserved-for-local-use range (RFC 6891):
#: guaranteed unknown to every modelled implementation.
UNKNOWN_OPTION_CODE = 0xFDE9

#: Fixed message ids, one per probe (two for overlap's retransmission
#: pair, which share one id by design).
CASE_MSG_ID = 0xA110
TC_MSG_ID = 0xA111
QDCOUNT_MSG_ID = 0xA112
EDNS_MSG_ID = 0xA113
OPCODE_MSG_ID = 0xA114
OVERLAP_MSG_ID = 0xA115

#: The probe names. Both resolve in the simulated directory.
PROBE_QNAME = "www.example.com."
OVERLAP_SECOND_QNAME = "example.com."

#: Rcodes that mean "the query was processed normally": NOERROR, and
#: NXDOMAIN for stacks that answer oddities with a name error rather
#: than a status error.
_BENIGN_RCODES = frozenset({int(RCode.NOERROR), int(RCode.NXDOMAIN)})


def _rcode_suffix(response: Message) -> Optional[str]:
    """``rcode:N`` for error responses, None for benign ones."""
    rcode = int(response.rcode)
    if rcode in _BENIGN_RCODES:
        return None
    return f"rcode:{rcode}"


# -- probe wires ----------------------------------------------------------


def case_probe_wire() -> bytes:
    return mixed_case_query(PROBE_QNAME, QType.A, msg_id=CASE_MSG_ID).encode()


def tc_probe_wire() -> bytes:
    return tc_query(PROBE_QNAME, QType.A, msg_id=TC_MSG_ID).encode()


def qdcount_probe_wire() -> bytes:
    return two_question_wire(PROBE_QNAME, QType.A, msg_id=QDCOUNT_MSG_ID)


def edns_probe_wire() -> bytes:
    query = make_query(PROBE_QNAME, QType.A, msg_id=EDNS_MSG_ID)
    return with_edns(
        query, options=(EdnsOption(UNKNOWN_OPTION_CODE, b"repro"),)
    ).encode()


def opcode_probe_wire() -> bytes:
    return odd_opcode_query(
        PROBE_QNAME, Opcode.STATUS, QType.A, msg_id=OPCODE_MSG_ID
    ).encode()


def overlap_probe_wires() -> tuple[bytes, bytes]:
    """Two transmissions sharing one id but asking different names."""
    first = make_query(PROBE_QNAME, QType.A, msg_id=OVERLAP_MSG_ID)
    second = make_query(OVERLAP_SECOND_QNAME, QType.A, msg_id=OVERLAP_MSG_ID)
    return first.encode(), second.encode()


# -- token extractors -----------------------------------------------------


def case_token(response: Optional[Message]) -> str:
    if response is None:
        return "drop"
    question = response.question
    if question is None:
        return "other"
    observed = question.qname.to_text()
    sent = mixed_case(PROBE_QNAME)
    if observed == sent:
        return "echo"
    if observed == sent.lower():
        return "lower"
    return "other"


def tc_token(response: Optional[Message]) -> str:
    if response is None:
        return "drop"
    return _rcode_suffix(response) or "served"


def qdcount_token(response: Optional[Message]) -> str:
    if response is None:
        return "drop"
    suffix = _rcode_suffix(response)
    if suffix is not None:
        return suffix
    return f"served:q{len(response.questions)}"


def edns_token(response: Optional[Message]) -> str:
    if response is None:
        return "drop"
    suffix = _rcode_suffix(response)
    if suffix is not None:
        return suffix
    edns = get_edns(response)
    if edns is not None and any(
        option.code == UNKNOWN_OPTION_CODE for option in edns.options
    ):
        return "opt-echo"
    return "opt-absent"


def opcode_token(response: Optional[Message]) -> str:
    if response is None:
        return "drop"
    return _rcode_suffix(response) or "served"


def overlap_token(answered_qnames: "set[str]") -> str:
    """Classify which of the two overlapping transmissions were answered.

    ``answered_qnames`` holds the lowercased question names of every
    accepted response carrying the shared id.
    """
    first = PROBE_QNAME in answered_qnames
    second = OVERLAP_SECOND_QNAME in answered_qnames
    if first and second:
        return "all"
    if first:
        return "first"
    if second:
        return "second"
    return "drop"
