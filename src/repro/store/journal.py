"""The crash-safe record journal under every result store.

A journal is a directory of append-only, sharded JSONL files: one
self-contained JSON entry per line, a new shard file per writer session
(and a rotation every ``records_per_file`` lines), so no line is ever
rewritten and archived shards stay bounded. Durability is batched —
:class:`JournalWriter` fsyncs every ``sync()`` call, which the store
issues once per segment batch — so a crash can lose at most the entries
since the last sync and can truncate at most the final line of one
file. :func:`read_journal` therefore tolerates an undecodable *final*
line per shard file (the torn write) but treats damage anywhere else as
:class:`StoreCorruptError`.

The module also owns the **content fingerprint** that makes resumption
safe: :func:`fingerprint` canonicalises an arbitrary tree of
dataclasses, enums, sets and primitives into deterministic JSON and
hashes it. The store fingerprints the :class:`~repro.core.study.
StudyConfig` plus every :class:`~repro.atlas.probe.ProbeSpec` (or the
campaign's definitions), writes the digest into the manifest, and
refuses — with :class:`StoreMismatchError` — to resume a journal whose
inputs don't hash to the same value. Worker count is deliberately *not*
part of the fingerprint: records are a pure function of the specs, so a
study interrupted at ``--workers 4`` may resume at ``--workers 1`` and
still export byte-identical results.
"""

from __future__ import annotations

import dataclasses
import enum
import glob
import hashlib
import json
import os
from typing import Any, Iterable, Optional


class StoreError(Exception):
    """Base class for every result-store failure."""


class StoreMismatchError(StoreError):
    """The journal on disk was produced by different study inputs."""


class StoreCorruptError(StoreError):
    """The journal is damaged beyond the tolerated torn final line."""


class StoreIncompleteError(StoreError):
    """A full reconstruction was requested but records are missing."""


class StoreResumeRequired(StoreError):
    """The store already holds records; pass ``resume=True`` to extend it."""


class StoreInterrupted(StoreError):
    """The run stopped early (probe budget exhausted); the journal holds
    everything measured so far and the study can be resumed."""

    def __init__(self, done: int, total: int) -> None:
        super().__init__(f"interrupted after {done}/{total} probes journaled")
        self.done = done
        self.total = total


# -- content fingerprinting --------------------------------------------------


#: Per-dataclass field-name tuples, resolved once per type.
_FIELD_NAMES: dict[type, tuple[str, ...]] = {}


def canonical_value(value: Any, _memo: Optional[dict] = None) -> Any:
    """Reduce an input tree to JSON-serialisable, deterministic form.

    Dataclasses carry their type name (two configs differing only in
    class must not collide), enums reduce to their values, and sets are
    sorted by their serialised form. The fallback is ``repr`` — fine
    for value objects like ``ipaddress`` addresses, whose reprs are
    stable across processes.

    Composite sub-objects are memoised by identity for the duration of
    one call: fleets share organisation and firmware-profile instances
    across thousands of specs, and fingerprinting must stay a trivial
    fraction of measuring them.
    """
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    if _memo is None:
        _memo = {}
    memo_key = id(value)
    cached = _memo.get(memo_key)
    if cached is not None:
        return cached
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        names = _FIELD_NAMES.get(cls)
        if names is None:
            names = tuple(f.name for f in dataclasses.fields(cls))
            _FIELD_NAMES[cls] = names
        result: Any = {"__type__": cls.__name__}
        for name in names:
            result[name] = canonical_value(getattr(value, name), _memo)
    elif isinstance(value, enum.Enum):
        result = canonical_value(value.value, _memo)
    elif isinstance(value, (frozenset, set)):
        items = [canonical_value(item, _memo) for item in value]
        result = sorted(items, key=lambda item: json.dumps(item, sort_keys=True))
    elif isinstance(value, (list, tuple)):
        result = [canonical_value(item, _memo) for item in value]
    elif isinstance(value, dict):
        result = {
            str(key): canonical_value(val, _memo)
            for key, val in sorted(value.items(), key=lambda kv: str(kv[0]))
        }
    else:
        result = repr(value)
    _memo[memo_key] = result
    return result


def fingerprint(payload: Any) -> str:
    """SHA-256 over the canonical JSON of ``payload``."""
    canon = json.dumps(
        canonical_value(payload), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


def study_fingerprint(config: Any, specs: Iterable[Any]) -> str:
    """Content hash of a pilot study's inputs: semantic config + fleet.

    Uses the exported config dict (which omits ``workers``), so a
    journal may be resumed with any worker count but never against a
    different seed, fleet, impairment profile or retry policy.
    """
    from repro.analysis.export import config_to_dict

    memo: dict = {}
    return fingerprint(
        {
            "kind": "study",
            "config": config_to_dict(config),
            "fleet": [canonical_value(spec, memo) for spec in specs],
        }
    )


def campaign_fingerprint(definitions: Iterable[Any], specs: Iterable[Any]) -> str:
    """Content hash of a campaign's inputs: definitions + fleet."""
    memo: dict = {}
    return fingerprint(
        {
            "kind": "campaign",
            "definitions": [canonical_value(d, memo) for d in definitions],
            "fleet": [canonical_value(spec, memo) for spec in specs],
        }
    )


# -- the sharded JSONL journal ----------------------------------------------


def _shard_pattern(prefix: str) -> str:
    # Deliberately loose: a foreign "records-*.jsonl" name must surface
    # as StoreCorruptError in _scan_next_shard, not be silently skipped.
    return f"{prefix}-*.jsonl"


def _shard_paths(directory: str, prefix: str) -> list[str]:
    return sorted(glob.glob(os.path.join(directory, _shard_pattern(prefix))))


class JournalWriter:
    """Append-only writer over a family of ``<prefix>-NNNN.jsonl`` shards.

    Each writer session opens a fresh shard file (existing shards are
    never reopened, so a crashed session can only ever have torn its
    *own* final line) and rotates to a new one every
    ``records_per_file`` entries. ``sync()`` flushes and fsyncs; between
    syncs entries sit in user/OS buffers — the batching the store's
    durability contract is built on.
    """

    def __init__(
        self, directory: str, prefix: str, records_per_file: int = 1024
    ) -> None:
        if records_per_file < 1:
            raise ValueError(
                f"records_per_file must be >= 1, got {records_per_file}"
            )
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.prefix = prefix
        self.records_per_file = records_per_file
        self._next_shard = self._scan_next_shard()
        self._handle = None
        self._lines_in_file = 0
        self.entries_written = 0

    def _scan_next_shard(self) -> int:
        highest = -1
        for path in _shard_paths(self.directory, self.prefix):
            stem = os.path.basename(path)[len(self.prefix) + 1 : -len(".jsonl")]
            try:
                highest = max(highest, int(stem))
            except ValueError:
                raise StoreCorruptError(f"unrecognised journal file name: {path}")
        return highest + 1

    def _rotate(self) -> None:
        self.sync()
        if self._handle is not None:
            self._handle.close()
        path = os.path.join(
            self.directory, f"{self.prefix}-{self._next_shard:04d}.jsonl"
        )
        self._next_shard += 1
        self._handle = open(path, "a", encoding="utf-8")
        self._lines_in_file = 0

    def append(self, entry: dict) -> None:
        if self._handle is None or self._lines_in_file >= self.records_per_file:
            self._rotate()
        # Insertion order, not sort_keys: every producer emits keys in a
        # deterministic order, and preserving it through the JSON round
        # trip keeps reconstructed exports byte-identical to live runs.
        self._handle.write(json.dumps(entry, separators=(",", ":")) + "\n")
        self._lines_in_file += 1
        self.entries_written += 1

    def sync(self) -> None:
        """Flush buffered entries and fsync the current shard file."""
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self.sync()
            self._handle.close()
            self._handle = None


def read_journal(directory: str, prefix: str) -> list[dict]:
    """Every decodable entry, in file-then-line order.

    A torn *final* line in any shard file (the one partial write a
    crash mid-append can leave) is silently dropped; an undecodable
    line anywhere else raises :class:`StoreCorruptError`.
    """
    entries: list[dict] = []
    for path in _shard_paths(directory, prefix):
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().split("\n")
        for lineno, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                entries.append(json.loads(line))
            except ValueError:
                trailing = lines[lineno + 1 :]
                if all(not rest.strip() for rest in trailing):
                    break  # torn tail of a crashed append — recoverable
                raise StoreCorruptError(
                    f"{path}:{lineno + 1}: undecodable journal line"
                )
    return entries


#: A tail cursor: shard basename -> bytes consumed so far. Serialises
#: as plain JSON, so aggregation state can persist it between runs.
TailCursor = dict


def read_journal_tail(
    directory: str, prefix: str, cursor: Optional[dict] = None
) -> tuple[list[dict], dict]:
    """Entries appended since ``cursor``; returns ``(entries, cursor')``.

    The incremental counterpart of :func:`read_journal`: instead of
    rereading every shard, it seeks each file to the byte offset the
    cursor recorded and decodes only the tail — the cost of one refresh
    is proportional to the *new* segments, not the archive. Safe against
    a live writer appending concurrently: only byte ranges ending in a
    newline are consumed, so a partially-flushed final line (the same
    torn tail :func:`read_journal` tolerates) is left for the next call
    — once the writer's following sync completes it, the line is read
    whole. A complete-but-undecodable line followed by real content
    raises :class:`StoreCorruptError` exactly like the full reader; one
    followed by nothing is never consumed (a crashed session's torn tail
    that happened to include the newline).

    Because shards are append-only and a writer session never reopens an
    archived shard, a consumed byte range can never change — folding the
    tails of successive calls visits every entry exactly once, in the
    same file-then-line order the full reader uses.
    """
    cursor = dict(cursor or {})
    entries: list[dict] = []
    for path in _shard_paths(directory, prefix):
        name = os.path.basename(path)
        offset = int(cursor.get(name, 0))
        try:
            size = os.path.getsize(path)
        except OSError:
            continue
        if size <= offset:
            continue
        with open(path, "rb") as handle:
            handle.seek(offset)
            blob = handle.read()
        end = blob.rfind(b"\n")
        if end < 0:
            continue  # no complete line beyond the cursor yet
        complete = blob[: end + 1]
        pieces = complete.split(b"\n")[:-1]
        consumed = offset
        for index, raw in enumerate(pieces):
            if not raw.strip():
                consumed += len(raw) + 1
                continue
            try:
                entries.append(json.loads(raw))
            except ValueError:
                if all(not rest.strip() for rest in pieces[index + 1 :]):
                    break  # torn-with-newline tail — leave it unconsumed
                lineno = complete[: consumed - offset].count(b"\n") + 1
                raise StoreCorruptError(
                    f"{path}: undecodable journal line "
                    f"({lineno} lines past byte {offset})"
                )
            consumed += len(raw) + 1
        cursor[name] = consumed
    return entries, cursor
