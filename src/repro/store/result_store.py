"""``ResultStore`` — the durable archive one study (or campaign) lives in.

Layout of a store directory::

    DIR/
      manifest.json            # schema, kind, input fingerprint, fleet size
      journal/
        records-0000.jsonl     # one ProbeRecord (or campaign row set) per line
        records-0001.jsonl     # new shard per writer session / rotation
        metrics-0000.jsonl     # one MetricsSnapshot per measured segment
      study.json               # final export, written atomically on completion

The manifest pins a content fingerprint of the study's inputs
(:func:`~repro.store.journal.study_fingerprint`); opening the store
with different inputs raises :class:`StoreMismatchError` instead of
silently mixing incompatible records. Records stream into the journal
as segments complete, so an interrupted run loses at most the entries
since the last batched fsync; resuming skips every journaled probe and
— because each probe's measurement is a pure function of its spec —
reconstructs a result byte-identical to an uninterrupted run, for any
worker count on either side of the interruption.

Metrics ride in per-segment snapshots (``metrics-*.jsonl``). Counter
and histogram merging is associative and events are replayed in fleet
order, so the reconstructed :class:`~repro.core.metrics.MetricsSnapshot`
serialises identically no matter where the run was cut. When metrics
are enabled, a probe only counts as *done* once its segment's snapshot
line is journaled too — a crash between the two simply re-measures that
segment.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from repro.ioutil import atomic_write_text

from .journal import (
    JournalWriter,
    StoreCorruptError,
    StoreError,
    StoreIncompleteError,
    StoreMismatchError,
    StoreResumeRequired,
    campaign_fingerprint,
    read_journal,
    study_fingerprint,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.atlas.campaign import MeasurementDefinition, MeasurementRow
    from repro.atlas.probe import ProbeSpec
    from repro.core.metrics import MetricsSnapshot
    from repro.core.study import ProbeRecord, StudyConfig, StudyResult

#: On-disk names inside a store directory.
MANIFEST_NAME = "manifest.json"
JOURNAL_DIR = "journal"
RECORDS_PREFIX = "records"
METRICS_PREFIX = "metrics"
STUDY_EXPORT_NAME = "study.json"

#: Store layout version.
STORE_SCHEMA = 1

#: Journal entries buffered between fsync batches.
DEFAULT_FSYNC_EVERY = 64


class ResultStore:
    """One study's (or campaign's) journal, manifest and final export.

    ``resume=True`` allows extending a journal that already holds
    records (after the fingerprint check); without it a non-empty store
    raises :class:`StoreResumeRequired` so two identical invocations
    cannot silently double-write. ``probe_budget`` bounds how many *new*
    probes one invocation may measure — the fleet executor raises
    :class:`~repro.store.journal.StoreInterrupted` once it is spent,
    which is also how the kill-and-resume CI job cuts a run midway.
    """

    def __init__(
        self,
        path: str,
        resume: bool = False,
        probe_budget: Optional[int] = None,
        fsync_every: int = DEFAULT_FSYNC_EVERY,
        records_per_file: int = 1024,
    ) -> None:
        if probe_budget is not None and probe_budget < 1:
            raise ValueError(f"probe_budget must be >= 1, got {probe_budget}")
        if fsync_every < 1:
            raise ValueError(f"fsync_every must be >= 1, got {fsync_every}")
        self.path = os.fspath(path)
        self.resume = resume
        self.probe_budget = probe_budget
        self.fsync_every = fsync_every
        self.records_per_file = records_per_file
        self._records: Optional[JournalWriter] = None
        self._metrics: Optional[JournalWriter] = None
        self._since_sync = 0
        self._manifest: Optional[dict] = None

    # -- manifest ----------------------------------------------------------

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.path, MANIFEST_NAME)

    @property
    def journal_path(self) -> str:
        return os.path.join(self.path, JOURNAL_DIR)

    @property
    def export_path(self) -> str:
        return os.path.join(self.path, STUDY_EXPORT_NAME)

    def _write_manifest(self, manifest: dict) -> None:
        atomic_write_text(
            self.manifest_path,
            json.dumps(manifest, indent=2, sort_keys=True) + "\n",
            create_parents=True,
        )
        self._manifest = manifest

    def _open(self, kind: str, fingerprint: str, manifest_extra: dict) -> dict:
        """Create or validate the manifest; return it."""
        existing = load_manifest(self.path, missing_ok=True)
        if existing is None:
            manifest = {
                "schema": STORE_SCHEMA,
                "kind": kind,
                "fingerprint": fingerprint,
                "complete": False,
                **manifest_extra,
            }
            self._write_manifest(manifest)
            return manifest
        if existing.get("kind") != kind:
            raise StoreMismatchError(
                f"{self.path} holds a {existing.get('kind')!r} journal, "
                f"not a {kind!r} one"
            )
        if existing.get("fingerprint") != fingerprint:
            raise StoreMismatchError(
                f"{self.path} was journaled for different inputs "
                f"(stored {str(existing.get('fingerprint'))[:12]}…, "
                f"current {fingerprint[:12]}…); refusing to mix records — "
                f"use a fresh --store directory"
            )
        self._manifest = existing
        return existing

    def _start_writers(self, with_metrics: bool) -> None:
        self._records = JournalWriter(
            self.journal_path, RECORDS_PREFIX, records_per_file=self.records_per_file
        )
        if with_metrics:
            self._metrics = JournalWriter(
                self.journal_path, METRICS_PREFIX,
                records_per_file=self.records_per_file,
            )

    # -- study surface -----------------------------------------------------

    def begin_study(
        self, config: "StudyConfig", specs: Sequence["ProbeSpec"]
    ) -> set[int]:
        """Open (or create) the store for this exact study; return the
        fleet indices whose records are already journaled."""
        from repro.analysis.export import config_to_dict

        manifest = self._open(
            "study",
            study_fingerprint(config, specs),
            {
                "fleet_size": len(specs),
                "seed": config.seed,
                "config": config_to_dict(config),
            },
        )
        done = self.completed_indices(require_metrics=config.metrics)
        if done and not self.resume:
            raise StoreResumeRequired(
                f"{self.path} already holds {len(done)} of "
                f"{manifest['fleet_size']} records; pass resume "
                f"(--resume) to continue it"
            )
        self._start_writers(with_metrics=config.metrics)
        return done

    def completed_indices(self, require_metrics: bool = False) -> set[int]:
        """Fleet indices that are durably measured.

        With metrics on, a record only counts once a metrics segment
        covers it — the two land in separate files and the record line
        is journaled first, so the intersection is the safe set.
        """
        journaled = {
            entry["i"] for entry in read_journal(self.journal_path, RECORDS_PREFIX)
        }
        if not require_metrics:
            return journaled
        covered: set[int] = set()
        for entry in read_journal(self.journal_path, METRICS_PREFIX):
            covered.update(entry["i"])
        return journaled & covered

    def append_segment(
        self,
        pairs: Iterable[tuple[int, "ProbeRecord"]],
        snapshot: Optional["MetricsSnapshot"] = None,
    ) -> None:
        """Journal one measured segment: its records, then (if metrics
        are on) the segment's snapshot, fsync'd in batches."""
        from repro.analysis.export import record_to_dict

        if self._records is None:
            raise StoreError("store not opened; call begin_study first")
        pairs = list(pairs)
        for index, record in pairs:
            self._records.append({"i": index, "record": record_to_dict(record)})
        if snapshot is not None:
            if self._metrics is None:
                raise StoreError("store was opened without metrics journaling")
            self._metrics.append(
                {"i": [index for index, _record in pairs],
                 "snapshot": snapshot.to_dict()}
            )
        self._since_sync += len(pairs)
        if self._since_sync >= self.fsync_every:
            self.sync()

    def sync(self) -> None:
        """Batch-fsync: records first, then the metrics segments that
        mark them complete — never the other way around."""
        if self._records is not None:
            self._records.sync()
        if self._metrics is not None:
            self._metrics.sync()
        self._since_sync = 0

    def collect_study(self) -> "tuple[list[ProbeRecord], Optional[MetricsSnapshot]]":
        """Reconstruct the full record list (fleet order) and, when the
        study collected metrics, the merged snapshot."""
        from repro.analysis.export import record_from_dict
        from repro.core.metrics import MetricsSnapshot

        manifest = self._require_manifest("study")
        fleet_size = int(manifest["fleet_size"])
        by_index: dict[int, dict] = {}
        for entry in read_journal(self.journal_path, RECORDS_PREFIX):
            by_index.setdefault(entry["i"], entry["record"])
        missing = [i for i in range(fleet_size) if i not in by_index]
        if missing:
            raise StoreIncompleteError(
                f"{self.path} is missing {len(missing)} of {fleet_size} "
                f"records (first gap: index {missing[0]}); resume the study "
                f"to fill them"
            )
        records = [record_from_dict(by_index[i]) for i in range(fleet_size)]
        if not manifest.get("config", {}).get("metrics", False):
            return records, None
        segments = read_journal(self.journal_path, METRICS_PREFIX)
        segments.sort(key=lambda entry: min(entry["i"]) if entry["i"] else -1)
        seen: set[int] = set()
        for entry in segments:
            indices = set(entry["i"])
            if indices & seen:
                raise StoreCorruptError(
                    f"{self.path}: overlapping metrics segments"
                )
            seen |= indices
        if seen != set(range(fleet_size)):
            raise StoreIncompleteError(
                f"{self.path}: metrics segments cover {len(seen)} of "
                f"{fleet_size} probes; resume the study to fill them"
            )
        merged = MetricsSnapshot.merge_all(
            MetricsSnapshot.from_dict(entry["snapshot"]) for entry in segments
        )
        return records, merged

    def finalize_study(self, study: "StudyResult") -> None:
        """Close the journal, write the atomic ``study.json`` export and
        mark the manifest complete."""
        from repro.analysis.export import save_study

        self.close()
        save_study(study, self.export_path)
        manifest = dict(self._require_manifest("study"))
        manifest["complete"] = True
        self._write_manifest(manifest)

    # -- campaign surface --------------------------------------------------

    def begin_campaign(
        self,
        definitions: Sequence["MeasurementDefinition"],
        specs: Sequence["ProbeSpec"],
    ) -> set[int]:
        """Open (or create) the store for this campaign; return the fleet
        indices already journaled."""
        manifest = self._open(
            "campaign",
            campaign_fingerprint(definitions, specs),
            {
                "fleet_size": len(specs),
                "msm_ids": [definition.msm_id for definition in definitions],
            },
        )
        done = self.completed_indices()
        if done and not self.resume:
            raise StoreResumeRequired(
                f"{self.path} already holds rows for {len(done)} of "
                f"{manifest['fleet_size']} probes; pass resume to continue"
            )
        self._start_writers(with_metrics=False)
        return done

    def append_campaign(
        self, index: int, probe_id: int, rows: Sequence["MeasurementRow"]
    ) -> None:
        """Journal one probe's campaign rows (empty for offline probes,
        which marks them done without producing output)."""
        if self._records is None:
            raise StoreError("store not opened; call begin_campaign first")
        self._records.append(
            {
                "i": index,
                "probe_id": probe_id,
                "rows": [row.to_dict() for row in rows],
            }
        )
        self._since_sync += 1
        if self._since_sync >= self.fsync_every:
            self.sync()

    def collect_campaign(self) -> "list[MeasurementRow]":
        """All journaled rows, flattened in fleet order."""
        from repro.atlas.campaign import row_from_dict

        manifest = self._require_manifest("campaign")
        fleet_size = int(manifest["fleet_size"])
        by_index: dict[int, list[dict]] = {}
        for entry in read_journal(self.journal_path, RECORDS_PREFIX):
            by_index.setdefault(entry["i"], entry["rows"])
        missing = [i for i in range(fleet_size) if i not in by_index]
        if missing:
            raise StoreIncompleteError(
                f"{self.path} is missing rows for {len(missing)} of "
                f"{fleet_size} probes; resume the campaign to fill them"
            )
        return [
            row_from_dict(row)
            for index in range(fleet_size)
            for row in by_index[index]
        ]

    def finalize_campaign(self) -> None:
        self.close()
        manifest = dict(self._require_manifest("campaign"))
        manifest["complete"] = True
        self._write_manifest(manifest)

    # -- longitudinal surface ----------------------------------------------

    def begin_longitudinal(
        self,
        fingerprint: str,
        epoch_sizes: Sequence[int],
        manifest_extra: Optional[dict] = None,
    ) -> set[tuple[int, int]]:
        """Open (or create) the store for a recurring campaign; return
        the ``(epoch, fleet_index)`` pairs already journaled.

        ``epoch_sizes`` pins the per-epoch fleet size (time-varying
        fleets make it a list, not a single number); the caller derives
        it deterministically from the scenario bundle, and a resumed run
        must re-derive the same sizes or the fingerprint check fails
        first anyway.
        """
        manifest = self._open(
            "longitudinal",
            fingerprint,
            {
                "epochs": len(epoch_sizes),
                "epoch_sizes": [int(size) for size in epoch_sizes],
                "fleet_size": sum(int(size) for size in epoch_sizes),
                **(manifest_extra or {}),
            },
        )
        done = self.completed_epoch_pairs()
        if done and not self.resume:
            raise StoreResumeRequired(
                f"{self.path} already holds {len(done)} of "
                f"{manifest['fleet_size']} epoch records; pass resume "
                f"(--resume) to continue it"
            )
        self._start_writers(with_metrics=False)
        return done

    def completed_epoch_pairs(self) -> set[tuple[int, int]]:
        """``(epoch, fleet_index)`` pairs durably journaled."""
        return {
            (entry["e"], entry["i"])
            for entry in read_journal(self.journal_path, RECORDS_PREFIX)
        }

    def append_epoch_segment(
        self, epoch: int, pairs: Iterable[tuple[int, "ProbeRecord"]]
    ) -> None:
        """Journal one epoch segment's records, fsync'd in batches.

        The campaign engine always appends in fleet order (it sorts the
        worker pool's output first), so the journal's line sequence is a
        pure function of the scenario bundle and the interruption points
        — byte-identical for any worker count.
        """
        from repro.analysis.export import record_to_dict

        if self._records is None:
            raise StoreError("store not opened; call begin_longitudinal first")
        count = 0
        for index, record in pairs:
            self._records.append(
                {"e": epoch, "i": index, "record": record_to_dict(record)}
            )
            count += 1
        self._since_sync += count
        if self._since_sync >= self.fsync_every:
            self.sync()

    def collect_epochs(self) -> "dict[int, list[ProbeRecord]]":
        """Journaled records per epoch, each list in fleet order
        (possibly partial — the aggregation layer tracks completeness)."""
        from repro.analysis.export import record_from_dict

        self._require_manifest("longitudinal")
        if self._records is not None:
            self.sync()  # reading through our own open writer
        by_pair: dict[tuple[int, int], dict] = {}
        for entry in read_journal(self.journal_path, RECORDS_PREFIX):
            by_pair.setdefault((entry["e"], entry["i"]), entry["record"])
        epochs: dict[int, list["ProbeRecord"]] = {}
        for epoch, index in sorted(by_pair):
            epochs.setdefault(epoch, []).append(
                record_from_dict(by_pair[(epoch, index)])
            )
        return epochs

    def finalize_longitudinal(self) -> None:
        self.close()
        manifest = dict(self._require_manifest("longitudinal"))
        manifest["complete"] = True
        self._write_manifest(manifest)

    # -- lifecycle ---------------------------------------------------------

    def _require_manifest(self, kind: str) -> dict:
        manifest = self._manifest or load_manifest(self.path)
        if manifest.get("kind") != kind:
            raise StoreMismatchError(
                f"{self.path} holds a {manifest.get('kind')!r} journal, "
                f"not a {kind!r} one"
            )
        self._manifest = manifest
        return manifest

    def close(self) -> None:
        """Sync and release the journal files (idempotent)."""
        if self._records is not None:
            self._records.close()
            self._records = None
        if self._metrics is not None:
            self._metrics.close()
            self._metrics = None
        self._since_sync = 0


# -- read-only archive surface ----------------------------------------------


def load_manifest(path: str, missing_ok: bool = False) -> Optional[dict]:
    """Read and validate a store directory's manifest."""
    manifest_path = os.path.join(os.fspath(path), MANIFEST_NAME)
    try:
        with open(manifest_path, encoding="utf-8") as handle:
            manifest = json.load(handle)
    except FileNotFoundError:
        if missing_ok:
            return None
        raise StoreError(f"{path} is not a result store (no {MANIFEST_NAME})")
    except ValueError as exc:
        raise StoreCorruptError(f"{manifest_path}: {exc}")
    if manifest.get("schema") != STORE_SCHEMA:
        raise StoreError(
            f"{manifest_path}: unsupported store schema "
            f"{manifest.get('schema')!r}"
        )
    return manifest


def list_stores(path: str) -> list[str]:
    """Store directories under ``path``: itself if it is one, else every
    direct child that is (sorted by name)."""
    path = os.fspath(path)
    if os.path.isfile(os.path.join(path, MANIFEST_NAME)):
        return [path]
    if not os.path.isdir(path):
        return []
    return sorted(
        os.path.join(path, name)
        for name in os.listdir(path)
        if os.path.isfile(os.path.join(path, name, MANIFEST_NAME))
    )


def load_stored_records(path: str) -> "list[tuple[int, ProbeRecord]]":
    """Journaled study records (possibly partial), sorted by fleet index
    — read straight from the journal, no re-simulation."""
    from repro.analysis.export import record_from_dict

    by_index: dict[int, dict] = {}
    for entry in read_journal(os.path.join(os.fspath(path), JOURNAL_DIR),
                              RECORDS_PREFIX):
        by_index.setdefault(entry["i"], entry["record"])
    return [
        (index, record_from_dict(by_index[index]))
        for index in sorted(by_index)
    ]


def load_stored_study(path: str) -> "StudyResult":
    """A :class:`~repro.core.study.StudyResult` over the journaled
    records (partial stores yield a partial record list)."""
    from repro.analysis.export import config_from_dict
    from repro.core.study import StudyResult

    manifest = load_manifest(path)
    if manifest.get("kind") != "study":
        raise StoreMismatchError(
            f"{path} holds a {manifest.get('kind')!r} journal, not a study"
        )
    config = manifest.get("config")
    return StudyResult(
        records=[record for _index, record in load_stored_records(path)],
        fleet_size=int(manifest.get("fleet_size", 0)),
        seed=int(manifest.get("seed", 0)),
        config=None if config is None else config_from_dict(config),
    )


@dataclass(frozen=True)
class StoreSummary:
    """One archive entry as ``repro results`` lists it."""

    path: str
    kind: str
    complete: bool
    done: int
    total: int
    seed: Optional[int]
    fingerprint: str
    #: Study stores: verdict value -> count. Campaign stores: row count
    #: under the single key ``"rows"``.
    counts: dict[str, int]

    def render(self) -> str:
        status = "complete" if self.complete else "partial"
        seed = "" if self.seed is None else f"  seed={self.seed}"
        counts = " ".join(
            f"{name}={count}" for name, count in sorted(self.counts.items())
        )
        return (
            f"{self.path}  [{self.kind}]  {self.done}/{self.total} probes  "
            f"{status}{seed}  {self.fingerprint[:12]}  {counts}"
        ).rstrip()


def summarize_store(path: str) -> StoreSummary:
    """Verdict counts (or campaign row counts) straight from the journal."""
    manifest = load_manifest(path)
    kind = str(manifest.get("kind"))
    total = int(manifest.get("fleet_size", 0))
    if kind == "study":
        records = load_stored_records(path)
        counts = Counter(record.verdict for _index, record in records)
        done = len(records)
        seed: Optional[int] = int(manifest.get("seed", 0))
    elif kind == "longitudinal":
        pairs: dict[tuple[int, int], str] = {}
        for entry in read_journal(
            os.path.join(os.fspath(path), JOURNAL_DIR), RECORDS_PREFIX
        ):
            pairs.setdefault(
                (entry["e"], entry["i"]), entry["record"].get("verdict", "?")
            )
        counts = Counter(pairs.values())
        counts["epochs"] = int(manifest.get("epochs", 0))
        done = len(pairs)
        seed = manifest.get("seed")
        if seed is not None:
            seed = int(seed)
    else:
        entries = read_journal(
            os.path.join(os.fspath(path), JOURNAL_DIR), RECORDS_PREFIX
        )
        seen: dict[int, int] = {}
        for entry in entries:
            seen.setdefault(entry["i"], len(entry["rows"]))
        counts = Counter({"rows": sum(seen.values())})
        done = len(seen)
        seed = None
    return StoreSummary(
        path=os.fspath(path),
        kind=kind,
        complete=bool(manifest.get("complete", False)),
        done=done,
        total=total,
        seed=seed,
        fingerprint=str(manifest.get("fingerprint", "")),
        counts=dict(counts),
    )
