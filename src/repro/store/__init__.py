"""``repro.store`` — the durable result store.

Crash-safe journaling, checkpointed fleet runs and resumable studies:
:class:`ResultStore` wraps an append-only sharded JSONL journal plus a
fingerprinted manifest, the fleet executor streams completed segments
into it, and ``run_pilot_study(config, store=...)`` /
``repro study --store DIR --resume`` skip already-journaled probes and
rebuild a byte-identical :class:`~repro.core.study.StudyResult`.
"""

from .journal import (
    JournalWriter,
    StoreCorruptError,
    StoreError,
    StoreIncompleteError,
    StoreInterrupted,
    StoreMismatchError,
    StoreResumeRequired,
    campaign_fingerprint,
    canonical_value,
    fingerprint,
    read_journal,
    read_journal_tail,
    study_fingerprint,
)
from .result_store import (
    JOURNAL_DIR,
    MANIFEST_NAME,
    METRICS_PREFIX,
    RECORDS_PREFIX,
    STORE_SCHEMA,
    STUDY_EXPORT_NAME,
    ResultStore,
    StoreSummary,
    list_stores,
    load_manifest,
    load_stored_records,
    load_stored_study,
    summarize_store,
)

__all__ = [
    "JOURNAL_DIR",
    "JournalWriter",
    "MANIFEST_NAME",
    "METRICS_PREFIX",
    "RECORDS_PREFIX",
    "ResultStore",
    "STORE_SCHEMA",
    "STUDY_EXPORT_NAME",
    "StoreCorruptError",
    "StoreError",
    "StoreIncompleteError",
    "StoreInterrupted",
    "StoreMismatchError",
    "StoreResumeRequired",
    "StoreSummary",
    "campaign_fingerprint",
    "canonical_value",
    "fingerprint",
    "list_stores",
    "load_manifest",
    "load_stored_records",
    "load_stored_study",
    "read_journal",
    "read_journal_tail",
    "study_fingerprint",
    "summarize_store",
]
