"""The four public anycast resolvers the paper studies (Table 1).

Each provider is modelled as a single anycast node owning its primary and
secondary service addresses in both families. Per-provider behaviour:

=============  =====================================  =======================
Provider       Location query                         version.bind
=============  =====================================  =======================
Cloudflare     ``id.server`` CHAOS TXT -> IATA code   REFUSED
Google         ``o-o.myaddr.l.google.com`` IN TXT ->  REFUSED
               the answering resolver's egress IP
Quad9          ``id.server`` CHAOS TXT ->             ``Q9-P-7.0`` (the only
               ``res###.<iata>.rrdns.pch.net``        provider that answers)
OpenDNS        ``debug.opendns.com`` IN TXT ->        SERVFAIL
               ``server m##.<iata>``
=============  =====================================  =======================

The *site* (IATA airport code) in each answer is chosen per query from an
anycast catchment function of the client address, so a fleet spread over
regions sees different — but all *standard-format* — answers, exactly the
property the paper's matchers rely on.
"""

from __future__ import annotations

import enum
import ipaddress
from dataclasses import dataclass
from typing import Callable, Optional

from repro.dnswire import (
    Message,
    QClass,
    QType,
    RCode,
    txt_record,
)
from repro.dnswire.chaosnames import ID_SERVER, VERSION_BIND
from repro.net import Packet
from repro.net.addr import IPAddress, parse_ip

from .base import DnsServerNode
from .directory import NameDirectory, OPENDNS_DEBUG
from .software import ChaosBehavior, ServerSoftware

#: Anycast sites usable by catchment functions (IATA codes).
ANYCAST_SITES = (
    "iad", "sfo", "ord", "lax", "jfk",
    "lhr", "fra", "ams", "cdg", "waw",
    "nrt", "sin", "syd", "gru", "jnb",
)


def default_catchment(client: IPAddress) -> str:
    """Deterministic client -> site mapping (hash of the /16)."""
    packed = client.packed
    return ANYCAST_SITES[(packed[0] ^ packed[1]) % len(ANYCAST_SITES)]


class Provider(enum.Enum):
    CLOUDFLARE = "Cloudflare DNS"
    GOOGLE = "Google DNS"
    QUAD9 = "Quad9"
    OPENDNS = "OpenDNS"


@dataclass(frozen=True)
class ProviderSpec:
    """Static facts about one provider."""

    provider: Provider
    v4_addresses: tuple[str, ...]
    v6_addresses: tuple[str, ...]
    egress_v4_ranges: tuple[str, ...]
    egress_v6_ranges: tuple[str, ...]

    @property
    def all_addresses(self) -> tuple[str, ...]:
        return self.v4_addresses + self.v6_addresses

    def addresses_for_family(self, family: int) -> tuple[str, ...]:
        return self.v4_addresses if family == 4 else self.v6_addresses

    def egress_address(self, family: int) -> IPAddress:
        """The deterministic egress address used toward authoritatives."""
        ranges = self.egress_v4_ranges if family == 4 else self.egress_v6_ranges
        network = ipaddress.ip_network(ranges[0])
        return network.network_address + 35

    def owns_egress(self, address: "str | IPAddress") -> bool:
        address = parse_ip(address)
        ranges = (
            self.egress_v4_ranges if address.version == 4 else self.egress_v6_ranges
        )
        return any(address in ipaddress.ip_network(r) for r in ranges)


PROVIDER_SPECS: dict[Provider, ProviderSpec] = {
    Provider.CLOUDFLARE: ProviderSpec(
        Provider.CLOUDFLARE,
        v4_addresses=("1.1.1.1", "1.0.0.1"),
        v6_addresses=("2606:4700:4700::1111", "2606:4700:4700::1001"),
        egress_v4_ranges=("162.158.0.0/15", "172.64.0.0/13"),
        egress_v6_ranges=("2400:cb00::/32",),
    ),
    Provider.GOOGLE: ProviderSpec(
        Provider.GOOGLE,
        v4_addresses=("8.8.8.8", "8.8.4.4"),
        v6_addresses=("2001:4860:4860::8888", "2001:4860:4860::8844"),
        egress_v4_ranges=("172.253.0.0/16", "74.125.0.0/16"),
        egress_v6_ranges=("2607:f8b0::/32",),
    ),
    Provider.QUAD9: ProviderSpec(
        Provider.QUAD9,
        v4_addresses=("9.9.9.9", "149.112.112.112"),
        v6_addresses=("2620:fe::fe", "2620:fe::9"),
        egress_v4_ranges=("74.63.16.0/21", "199.249.255.0/24"),
        egress_v6_ranges=("2620:171::/36",),
    ),
    Provider.OPENDNS: ProviderSpec(
        Provider.OPENDNS,
        v4_addresses=("208.67.222.222", "208.67.220.220"),
        v6_addresses=("2620:119:35::35", "2620:119:53::53"),
        egress_v4_ranges=("146.112.0.0/16",),
        egress_v6_ranges=("2a04:e4c0::/29",),
    ),
}


def _provider_personality(provider: Provider) -> ServerSoftware:
    """CHAOS personality for non-location queries.

    Only Quad9 answers ``version.bind`` (§3.2: "While only one resolver
    (Quad9) answers version.bind"); the others return error statuses.
    """
    if provider is Provider.QUAD9:
        version_bind = ChaosBehavior.answer("Q9-P-7.0")
    elif provider is Provider.GOOGLE:
        version_bind = ChaosBehavior.refuse(RCode.REFUSED)
    elif provider is Provider.CLOUDFLARE:
        version_bind = ChaosBehavior.refuse(RCode.REFUSED)
    else:
        version_bind = ChaosBehavior.refuse(RCode.SERVFAIL)
    return ServerSoftware(
        label=provider.value,
        family=provider.value,
        version_bind=version_bind,
        id_server=ChaosBehavior.refuse(),  # overridden for CF/Q9 below
        hostname_bind=ChaosBehavior.refuse(),
    )


#: DoT certificate names (RFC 7858 authentication domain names).
PROVIDER_TLS_IDENTITIES: dict[Provider, str] = {
    Provider.CLOUDFLARE: "one.one.one.one",
    Provider.GOOGLE: "dns.google",
    Provider.QUAD9: "dns.quad9.net",
    Provider.OPENDNS: "dns.opendns.com",
}


class PublicResolverNode(DnsServerNode):
    """An anycast public resolver with location-query support."""

    def __init__(
        self,
        provider: Provider,
        directory: NameDirectory,
        name: Optional[str] = None,
        catchment: Callable[[IPAddress], str] = default_catchment,
    ) -> None:
        spec = PROVIDER_SPECS[provider]
        super().__init__(
            name or f"public-{provider.name.lower()}",
            addresses=list(spec.all_addresses),
            software=_provider_personality(provider),
            tls_identity=PROVIDER_TLS_IDENTITIES[provider],
        )
        self.provider = provider
        self.spec = spec
        self.directory = directory
        self.catchment = catchment

    def response_signature(self, packet: Packet) -> tuple:
        """Anycast answers depend on the client address: the catchment
        picks the site and the last address byte picks the instance/
        machine number in Quad9 and OpenDNS location answers. Keying on
        ``catchment(src)`` (not just the site formula's inputs) keeps
        custom catchment functions safe too."""
        src = packet.src
        return (src.version, self.catchment(src), src.packed[-1])

    # -- location answers --------------------------------------------------

    def site_for(self, client: IPAddress) -> str:
        return self.catchment(client)

    def location_answer(self, query: Message, client: IPAddress) -> Optional[Message]:
        """Answer the provider's own location query, if this is one."""
        question = query.question
        assert question is not None
        site = self.site_for(client)
        if self.provider is Provider.CLOUDFLARE:
            if (
                question.qname == ID_SERVER
                and int(question.qclass) == int(QClass.CH)
                and int(question.qtype) == int(QType.TXT)
            ):
                record = txt_record(
                    question.qname, site.upper(), rdclass=int(QClass.CH), ttl=0
                )
                return query.reply(answers=(record,), authoritative=True)
        elif self.provider is Provider.QUAD9:
            if (
                question.qname == ID_SERVER
                and int(question.qclass) == int(QClass.CH)
                and int(question.qtype) == int(QType.TXT)
            ):
                instance = 100 + (client.packed[-1] % 60)
                record = txt_record(
                    question.qname,
                    f"res{instance}.{site}.rrdns.pch.net",
                    rdclass=int(QClass.CH),
                    ttl=0,
                )
                return query.reply(answers=(record,), authoritative=True)
        elif self.provider is Provider.OPENDNS:
            if (
                question.qname == OPENDNS_DEBUG
                and int(question.qclass) == int(QClass.IN)
                and int(question.qtype) == int(QType.TXT)
            ):
                machine = 80 + (client.packed[-1] % 19)
                record = txt_record(
                    question.qname, f"server m{machine}.{site}", ttl=0
                )
                return query.reply(answers=(record,), authoritative=True)
        # Google's location query is an ordinary IN TXT resolved through
        # the directory; the dynamic zone answers with our egress address.
        return None

    # -- dispatch ------------------------------------------------------------

    def respond(self, query: Message, packet: Packet) -> Optional[Message]:
        located = self.location_answer(query, packet.src)
        if located is not None:
            return located
        return super().respond(query, packet)

    def respond_standard(self, query: Message, packet: Packet) -> Optional[Message]:
        question = query.question
        assert question is not None
        if int(question.qclass) != int(QClass.IN):
            return query.reply(rcode=RCode.NOTIMP)
        egress = self.spec.egress_address(packet.src.version)
        result = self.directory.resolve(
            question.qname, question.qtype, question.qclass, str(egress)
        )
        answers = tuple(result.records)
        answers += self._myaddr_ecs_extra(query, question)
        return query.reply(rcode=result.rcode, answers=answers)

    def _myaddr_ecs_extra(self, query: Message, question) -> tuple:
        """Echo an EDNS Client-Subnet option on ``o-o.myaddr`` answers.

        Google's debugging name returns a second TXT string,
        ``edns0-client-subnet <prefix>``, when the query carried ECS —
        real-world noise the location-query matcher must tolerate.
        """
        from repro.dnswire import txt_record
        from repro.dnswire.edns import get_edns
        from .directory import GOOGLE_MYADDR

        if self.provider is not Provider.GOOGLE or question.qname != GOOGLE_MYADDR:
            return ()
        edns = get_edns(query)
        if edns is None:
            return ()
        subnet = edns.client_subnet()
        if subnet is None:
            return ()
        return (
            txt_record(
                question.qname, f"edns0-client-subnet {subnet.to_text()}", ttl=60
            ),
        )
