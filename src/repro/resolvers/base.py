"""Base class for DNS server nodes attached to the simulated network.

A :class:`DnsServerNode` terminates UDP/53 on its addresses, decodes the
wire message, and dispatches to ``respond``. CHAOS-class debugging
queries are dispatched through the node's software personality so every
server in the zoo — public resolver, ISP resolver, embedded forwarder —
answers ``version.bind``/``id.server`` the way its software would.
"""

from __future__ import annotations

import enum
from typing import Optional, Union

from repro.dnswire import (
    DNS_PORT,
    Message,
    QClass,
    QType,
    RCode,
    decode_or_none,
    txt_record,
)
from repro.dnswire.chaosnames import HOSTNAME_BIND, ID_SERVER, VERSION_BIND
from repro.net import Packet, Protocol, make_reply
from repro.net.addr import IPAddress
from repro.net.doh import DOH_PORT, unwrap_doh_query, wrap_doh_response
from repro.net.doq import is_doq_payload, unwrap_doq, wrap_doq
from repro.net.dot import DOT_PORT, unwrap_dot, wrap_dot
from repro.net.sim import Node

from .ambiguity import (
    DEFAULT_AMBIGUITY,
    AmbiguityAction,
    ambiguity_finalize,
    ambiguity_precheck,
)
from .software import ChaosAction, ChaosBehavior, ServerSoftware, mute


class ChaosOutcome(enum.Enum):
    """Sentinel returned when the personality wants special handling."""

    FORWARD = "forward"
    IGNORE = "ignore"
    NOT_CHAOS = "not-chaos"


def chaos_respond(
    software: ServerSoftware, query: Message
) -> Union[Message, ChaosOutcome]:
    """Answer a CHAOS debugging query per ``software``'s personality.

    Returns a :class:`Message` when the software answers (or errors)
    locally, ``ChaosOutcome.FORWARD``/``IGNORE`` for those actions, and
    ``NOT_CHAOS`` when the query is not a CHAOS debugging query at all.
    """
    question = query.question
    if question is None or int(question.qclass) != int(QClass.CH):
        return ChaosOutcome.NOT_CHAOS
    if int(question.qtype) != int(QType.TXT):
        return query.reply(rcode=RCode.NOTIMP)
    behaviors = {
        VERSION_BIND: software.version_bind,
        ID_SERVER: software.id_server,
        HOSTNAME_BIND: software.hostname_bind,
    }
    behavior: Optional[ChaosBehavior] = behaviors.get(question.qname)
    if behavior is None:
        # Unknown CHAOS name: servers conventionally refuse.
        return query.reply(rcode=RCode.REFUSED)
    if behavior.action is ChaosAction.ANSWER:
        assert behavior.text is not None
        record = txt_record(
            question.qname, behavior.text, rdclass=int(QClass.CH), ttl=0
        )
        return query.reply(answers=(record,), authoritative=True)
    if behavior.action is ChaosAction.RCODE:
        return query.reply(rcode=behavior.rcode)
    if behavior.action is ChaosAction.FORWARD:
        return ChaosOutcome.FORWARD
    return ChaosOutcome.IGNORE


#: Cached-serve outcome kinds (see ``DnsServerNode._serve``).
_CACHE_INVALID = 0  # payload is not a DNS query: dropped, not counted
_CACHE_NO_ANSWER = 1  # counted as a query, server chose not to answer
_CACHE_ANSWER = 2  # counted, reply wire is query id + cached tail

#: Bound on each server's answer-template cache; cleared when full.
_RESPONSE_CACHE_MAX = 4096


class DnsServerNode(Node):
    """A network node that serves DNS on UDP/53."""

    def __init__(
        self,
        name: str,
        addresses: "list[str | IPAddress]",
        software: Optional[ServerSoftware] = None,
        asn: Optional[int] = None,
        tls_identity: Optional[str] = None,
    ) -> None:
        super().__init__(name, asn=asn)
        from repro.net.addr import parse_ip

        self._addresses = {parse_ip(a) for a in addresses}
        self.software = software or mute()
        self.gateway: Optional[str] = None
        self.queries_seen = 0
        #: Name presented on the server's TLS certificate. None disables
        #: encrypted service entirely (ports 853 and 443 closed); set, it
        #: enables DoT and DoQ on 853 and DoH on 443 with this identity.
        self.tls_identity = tls_identity
        #: Opt-in answer-template cache (fast engine only): serving is a
        #: pure function of ``(payload minus id, response_signature)``,
        #: so repeated identical queries replay the cached wire with the
        #: new id spliced in. Stays off unless a scenario builder that
        #: has audited this node's purity turns it on.
        self.response_cache_enabled = False
        self._response_cache: dict = {}

    def addresses(self) -> set[IPAddress]:
        return set(self._addresses)

    # -- plumbing ----------------------------------------------------------

    def deliver_local(self, packet: Packet) -> None:
        if packet.protocol is not Protocol.UDP:
            self.trace("drop", packet, "icmp at server")
            return
        assert packet.udp is not None
        if packet.udp.dport == DNS_PORT:
            self._serve(packet, packet.udp.payload)
            return
        if packet.udp.dport == DOT_PORT and self.tls_identity is not None:
            # Port 853 is shared: DoQ (RFC 9250) and DoT are told apart
            # by frame magic, as real stacks are by transport protocol.
            payload = packet.udp.payload
            if is_doq_payload(payload):
                doq_frame = unwrap_doq(payload)
                if doq_frame is None:
                    self.trace("drop", packet, "malformed DoQ frame")
                    return
                identity = self.tls_identity
                stream_id = doq_frame.stream_id
                self._serve(
                    packet,
                    doq_frame.dns_payload,
                    wrap=lambda wire: wrap_doq(wire, identity, stream_id),
                    label="DoQ",
                )
                return
            frame = unwrap_dot(payload)
            if frame is None:
                self.trace("drop", packet, "malformed DoT frame")
                return
            identity = self.tls_identity
            self._serve(
                packet,
                frame.dns_payload,
                wrap=lambda wire: wrap_dot(wire, identity),
                label="DoT",
            )
            return
        if packet.udp.dport == DOH_PORT and self.tls_identity is not None:
            request = unwrap_doh_query(packet.udp.payload)
            if request is None:
                self.trace("drop", packet, "malformed DoH request")
                return
            identity = self.tls_identity
            self._serve(
                packet,
                request.dns_payload,
                wrap=lambda wire: wrap_doh_response(wire, identity),
                label="DoH",
            )
            return
        self.trace("drop", packet, f"closed port {packet.udp.dport}")

    def response_signature(self, packet: Packet) -> tuple:
        """Everything besides the query wire that ``respond`` may read
        from ``packet``. The answer-template cache keys on it; subclasses
        whose answers depend on more of the source address must widen it
        (see :class:`~repro.resolvers.public.PublicResolverNode`)."""
        return (packet.src.version,)

    def _serve(self, packet: Packet, payload: bytes, wrap=None, label: str = "") -> None:
        """Serve one decoded query. ``wrap`` re-frames the response wire
        for encrypted transports (DoT/DoH/DoQ reply framing); None means
        plaintext UDP/53. Encrypted serving never uses the
        answer-template cache — session framing varies per query (DoQ
        stream ids) and encrypted volume is too small to matter."""
        cache = None
        key = None
        if (
            self.response_cache_enabled
            and wrap is None
            and len(payload) >= 2
            # The cached path emits no trace/metric events, so it only
            # runs when nobody is watching; an observed run takes the
            # reference path below and records everything.
            and (self.network is None or not self.network.observing)
        ):
            cache = self._response_cache
            key = (payload[2:], self.response_signature(packet))
            hit = cache.get(key)
            if hit is not None:
                kind, tail = hit
                if kind == _CACHE_INVALID:
                    return
                self.queries_seen += 1
                if kind == _CACHE_NO_ANSWER:
                    return
                self.emit(make_reply(packet, payload[:2] + tail))
                return
        query = decode_or_none(payload)
        if query is None or query.is_response or query.question is None:
            self.trace("drop", packet, "not a DNS query")
            if cache is not None:
                self._cache_store(key, (_CACHE_INVALID, b""))
            return
        self.queries_seen += 1
        response = self.respond(query, packet)
        if response is None:
            self.trace("drop", packet, "server chose not to answer")
            if cache is not None:
                self._cache_store(key, (_CACHE_NO_ANSWER, b""))
            return
        wire = response.encode()
        # Cache only when the reply id echoes the query id, so a hit can
        # rebuild the exact wire from the incoming payload's first two
        # bytes (it always does — reply() preserves msg_id — but the
        # check keeps a future exotic responder from poisoning the cache).
        if cache is not None and wire[:2] == payload[:2]:
            self._cache_store(key, (_CACHE_ANSWER, wire[2:]))
        if wrap is not None:
            wire = wrap(wire)
        reply = make_reply(packet, wire)
        self.trace("send", reply, "dns response" + (f" ({label})" if label else ""))
        self.emit(reply)

    def _cache_store(self, key, value) -> None:
        if len(self._response_cache) >= _RESPONSE_CACHE_MAX:
            self._response_cache.clear()
        self._response_cache[key] = value

    def emit(self, packet: Packet) -> None:
        """Send a locally generated packet toward its destination."""
        if self.gateway is None:
            raise RuntimeError(f"{self.name} has no gateway configured")
        self.send(self.gateway, packet)

    # -- behaviour ----------------------------------------------------------

    def respond(self, query: Message, packet: Packet) -> Optional[Message]:
        """Compute the response message; None means drop (timeout).

        Ambiguous queries (TC flag set, multiple questions, unknown EDNS
        options, odd opcodes) are intercepted by the software's
        :class:`~repro.resolvers.ambiguity.AmbiguityProfile` before
        normal dispatch — the fingerprint surface. The shared default
        profile short-circuits to the historical path untouched.
        """
        profile = self.software.ambiguity
        if profile is DEFAULT_AMBIGUITY:
            return self._respond_dispatch(query, packet)
        early = ambiguity_precheck(profile, query)
        if early is AmbiguityAction.DROP:
            return None
        response = (
            early if early is not None else self._respond_dispatch(query, packet)
        )
        return ambiguity_finalize(profile, query, response)

    def _respond_dispatch(self, query: Message, packet: Packet) -> Optional[Message]:
        outcome = chaos_respond(self.software, query)
        if isinstance(outcome, Message):
            return outcome
        if outcome is ChaosOutcome.IGNORE:
            return None
        if outcome is ChaosOutcome.FORWARD:
            # Plain servers have no upstream; refuse rather than loop.
            return query.reply(rcode=RCode.REFUSED)
        return self.respond_standard(query, packet)

    def respond_standard(self, query: Message, packet: Packet) -> Optional[Message]:
        """Handle a non-CHAOS query. Default: REFUSED (no recursion here)."""
        return query.reply(rcode=RCode.REFUSED)
