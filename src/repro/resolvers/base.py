"""Base class for DNS server nodes attached to the simulated network.

A :class:`DnsServerNode` terminates UDP/53 on its addresses, decodes the
wire message, and dispatches to ``respond``. CHAOS-class debugging
queries are dispatched through the node's software personality so every
server in the zoo — public resolver, ISP resolver, embedded forwarder —
answers ``version.bind``/``id.server`` the way its software would.
"""

from __future__ import annotations

import enum
from typing import Optional, Union

from repro.dnswire import (
    DNS_PORT,
    Message,
    QClass,
    QType,
    RCode,
    decode_or_none,
    txt_record,
)
from repro.dnswire.chaosnames import HOSTNAME_BIND, ID_SERVER, VERSION_BIND
from repro.net import Packet, Protocol, make_reply
from repro.net.addr import IPAddress
from repro.net.dot import DOT_PORT, unwrap_dot, wrap_dot
from repro.net.sim import Node

from .software import ChaosAction, ChaosBehavior, ServerSoftware, mute


class ChaosOutcome(enum.Enum):
    """Sentinel returned when the personality wants special handling."""

    FORWARD = "forward"
    IGNORE = "ignore"
    NOT_CHAOS = "not-chaos"


def chaos_respond(
    software: ServerSoftware, query: Message
) -> Union[Message, ChaosOutcome]:
    """Answer a CHAOS debugging query per ``software``'s personality.

    Returns a :class:`Message` when the software answers (or errors)
    locally, ``ChaosOutcome.FORWARD``/``IGNORE`` for those actions, and
    ``NOT_CHAOS`` when the query is not a CHAOS debugging query at all.
    """
    question = query.question
    if question is None or int(question.qclass) != int(QClass.CH):
        return ChaosOutcome.NOT_CHAOS
    if int(question.qtype) != int(QType.TXT):
        return query.reply(rcode=RCode.NOTIMP)
    behaviors = {
        VERSION_BIND: software.version_bind,
        ID_SERVER: software.id_server,
        HOSTNAME_BIND: software.hostname_bind,
    }
    behavior: Optional[ChaosBehavior] = behaviors.get(question.qname)
    if behavior is None:
        # Unknown CHAOS name: servers conventionally refuse.
        return query.reply(rcode=RCode.REFUSED)
    if behavior.action is ChaosAction.ANSWER:
        assert behavior.text is not None
        record = txt_record(
            question.qname, behavior.text, rdclass=int(QClass.CH), ttl=0
        )
        return query.reply(answers=(record,), authoritative=True)
    if behavior.action is ChaosAction.RCODE:
        return query.reply(rcode=behavior.rcode)
    if behavior.action is ChaosAction.FORWARD:
        return ChaosOutcome.FORWARD
    return ChaosOutcome.IGNORE


class DnsServerNode(Node):
    """A network node that serves DNS on UDP/53."""

    def __init__(
        self,
        name: str,
        addresses: "list[str | IPAddress]",
        software: Optional[ServerSoftware] = None,
        asn: Optional[int] = None,
        tls_identity: Optional[str] = None,
    ) -> None:
        super().__init__(name, asn=asn)
        from repro.net.addr import parse_ip

        self._addresses = {parse_ip(a) for a in addresses}
        self.software = software or mute()
        self.gateway: Optional[str] = None
        self.queries_seen = 0
        #: Name presented on the server's DoT certificate. None disables
        #: DoT service (port 853 closed).
        self.tls_identity = tls_identity

    def addresses(self) -> set[IPAddress]:
        return set(self._addresses)

    # -- plumbing ----------------------------------------------------------

    def deliver_local(self, packet: Packet) -> None:
        if packet.protocol is not Protocol.UDP:
            self.trace("drop", packet, "icmp at server")
            return
        assert packet.udp is not None
        if packet.udp.dport == DNS_PORT:
            self._serve(packet, packet.udp.payload, dot=False)
            return
        if packet.udp.dport == DOT_PORT and self.tls_identity is not None:
            frame = unwrap_dot(packet.udp.payload)
            if frame is None:
                self.trace("drop", packet, "malformed DoT frame")
                return
            self._serve(packet, frame.dns_payload, dot=True)
            return
        self.trace("drop", packet, f"closed port {packet.udp.dport}")

    def _serve(self, packet: Packet, payload: bytes, dot: bool) -> None:
        query = decode_or_none(payload)
        if query is None or query.is_response or query.question is None:
            self.trace("drop", packet, "not a DNS query")
            return
        self.queries_seen += 1
        response = self.respond(query, packet)
        if response is None:
            self.trace("drop", packet, "server chose not to answer")
            return
        wire = response.encode()
        if dot:
            assert self.tls_identity is not None
            wire = wrap_dot(wire, self.tls_identity)
        reply = make_reply(packet, wire)
        self.trace("send", reply, "dns response" + (" (DoT)" if dot else ""))
        self.emit(reply)

    def emit(self, packet: Packet) -> None:
        """Send a locally generated packet toward its destination."""
        if self.gateway is None:
            raise RuntimeError(f"{self.name} has no gateway configured")
        self.send(self.gateway, packet)

    # -- behaviour ----------------------------------------------------------

    def respond(self, query: Message, packet: Packet) -> Optional[Message]:
        """Compute the response message; None means drop (timeout)."""
        outcome = chaos_respond(self.software, query)
        if isinstance(outcome, Message):
            return outcome
        if outcome is ChaosOutcome.IGNORE:
            return None
        if outcome is ChaosOutcome.FORWARD:
            # Plain servers have no upstream; refuse rather than loop.
            return query.reply(rcode=RCode.REFUSED)
        return self.respond_standard(query, packet)

    def respond_standard(self, query: Message, packet: Packet) -> Optional[Message]:
        """Handle a non-CHAOS query. Default: REFUSED (no recursion here)."""
        return query.reply(rcode=RCode.REFUSED)
