"""Ambiguity profiles: how DNS software reacts to crafted edge cases.

Real resolver and forwarder implementations diverge wildly on inputs the
RFCs under-specify — a query arriving with the TC bit already set, a
question section with two entries, an OPT record carrying an option code
nobody allocated, a STATUS-opcode "query", two retransmissions sharing a
message id but not a question. Those divergences are deterministic per
code base, which makes them a *fingerprint*: the ambiguity-probe engine
(:mod:`repro.fingerprint`) sends one probe per axis and reads the
interceptor's software off the reaction vector.

An :class:`AmbiguityProfile` is the per-personality policy for those
axes. The default profile reproduces the historical behaviour of every
node in the zoo bit for bit (all axes ``"pass"``), so software without a
curated profile is wire-identical to before this module existed.

Axis values
-----------

``case``
    ``"echo"`` — reply question echoes the query's spelling unchanged
    (the default; what almost every real server does). ``"lower"`` —
    the implementation canonicalises names, so the echoed question (and
    any relayed query) comes back lowercased: 0x20-encoding dies here.
``tc_query``
    Reaction to a *query* arriving with the TC flag set: ``"pass"``
    (ignore the flag and serve normally), an error rcode (``"formerr"``
    / ``"refused"`` / ``"notimp"`` / ``"servfail"``), or ``"drop"``.
``multi_question``
    Reaction to ``qdcount > 1``: ``"pass"`` (answer the first question,
    echoing the full question section), an error rcode, or ``"drop"``.
``edns_unknown``
    Reaction to an OPT record carrying an unallocated option code:
    ``"pass"`` (ignore it; replies carry no OPT), ``"strip"`` (drop the
    OPT before processing — forwarders relay the query without it),
    ``"echo"`` (answer normally but echo the unknown options back in an
    OPT record), an error rcode, or ``"drop"``.
``odd_opcode``
    Reaction to a non-QUERY opcode (STATUS/IQUERY): ``"pass"`` (serve
    as if it were a normal query), an error rcode, or ``"drop"``.
``overlap``
    Two in-flight queries sharing a client message id but differing in
    payload: ``"all"`` treats them independently (both answered);
    ``"first"`` dedups on the id — the second transmission is dropped.
    Only stateful forwarders can dedup; plain servers always answer
    both, whatever their profile says.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional, Union

from repro.dnswire import DnsName, Message, Opcode, Question, RCode
from repro.dnswire.edns import Edns, EdnsOption, OPTION_CLIENT_SUBNET, get_edns, with_edns

#: Option codes the software zoo understands; anything else is "unknown"
#: for the ``edns_unknown`` axis.
KNOWN_OPTION_CODES = frozenset({OPTION_CLIENT_SUBNET})

_RCODE_VALUES = {
    "formerr": int(RCode.FORMERR),
    "servfail": int(RCode.SERVFAIL),
    "notimp": int(RCode.NOTIMP),
    "refused": int(RCode.REFUSED),
}

_CASE_VALUES = ("echo", "lower")
_TC_VALUES = ("pass", "formerr", "servfail", "notimp", "refused", "drop")
_MULTI_VALUES = _TC_VALUES
_EDNS_VALUES = ("pass", "strip", "echo", "formerr", "servfail", "notimp", "refused", "drop")
_OPCODE_VALUES = _TC_VALUES
_OVERLAP_VALUES = ("all", "first")


@dataclass(frozen=True)
class AmbiguityProfile:
    """One software personality's reactions to ambiguous queries."""

    case: str = "echo"
    tc_query: str = "pass"
    multi_question: str = "pass"
    edns_unknown: str = "pass"
    odd_opcode: str = "pass"
    overlap: str = "all"

    def __post_init__(self) -> None:
        for value, allowed, axis in (
            (self.case, _CASE_VALUES, "case"),
            (self.tc_query, _TC_VALUES, "tc_query"),
            (self.multi_question, _MULTI_VALUES, "multi_question"),
            (self.edns_unknown, _EDNS_VALUES, "edns_unknown"),
            (self.odd_opcode, _OPCODE_VALUES, "odd_opcode"),
            (self.overlap, _OVERLAP_VALUES, "overlap"),
        ):
            if value not in allowed:
                raise ValueError(f"{axis} must be one of {allowed}, got {value!r}")


#: The shared no-divergence profile. Kept as a singleton so hot paths can
#: skip every ambiguity check with one identity comparison — nodes built
#: without a curated profile stay byte-identical to the pre-profile code.
DEFAULT_AMBIGUITY = AmbiguityProfile()


class AmbiguityAction(enum.Enum):
    """Sentinel outcomes of :func:`ambiguity_precheck`."""

    DROP = "drop"


def _react(value: str, query: Message) -> Union[Message, AmbiguityAction]:
    if value == "drop":
        return AmbiguityAction.DROP
    return query.reply(rcode=_RCODE_VALUES[value])


def has_unknown_edns_option(query: Message) -> bool:
    """True when the query's OPT carries an unallocated option code."""
    edns = get_edns(query)
    if edns is None:
        return False
    return any(option.code not in KNOWN_OPTION_CODES for option in edns.options)


def unknown_edns_options(query: Message) -> tuple[EdnsOption, ...]:
    edns = get_edns(query)
    if edns is None:
        return ()
    return tuple(
        option for option in edns.options if option.code not in KNOWN_OPTION_CODES
    )


def ambiguity_precheck(
    profile: AmbiguityProfile, query: Message
) -> Union[Message, AmbiguityAction, None]:
    """Local divergent reaction to an ambiguous query, if the profile has
    one. Returns an error :class:`Message`, :data:`AmbiguityAction.DROP`,
    or None when normal processing should continue. Checks run in DPI
    order — opcode, TC flag, question count, EDNS — so a probe that
    triggers exactly one axis observes exactly that axis's reaction."""
    if profile.odd_opcode != "pass" and int(query.flags.opcode) != int(Opcode.QUERY):
        return _react(profile.odd_opcode, query)
    if profile.tc_query != "pass" and query.flags.tc:
        return _react(profile.tc_query, query)
    if profile.multi_question != "pass" and len(query.questions) > 1:
        return _react(profile.multi_question, query)
    if profile.edns_unknown in ("formerr", "servfail", "notimp", "refused", "drop"):
        if has_unknown_edns_option(query):
            return _react(profile.edns_unknown, query)
    return None


def _lower_name(qname: DnsName) -> DnsName:
    lowered = tuple(label.lower() for label in qname.labels)
    if lowered == qname.labels:
        return qname
    return DnsName(lowered)


def lowercase_questions(message: Message) -> Message:
    """Return ``message`` with every question qname lowercased (the
    ``case="lower"`` canonicalisation). No-op when already lowercase."""
    changed = False
    questions = []
    for question in message.questions:
        lowered = _lower_name(question.qname)
        if lowered is not question.qname:
            changed = True
            question = replace(question, qname=lowered)
        questions.append(question)
    if not changed:
        return message
    return replace(message, questions=tuple(questions))


def ambiguity_finalize(
    profile: AmbiguityProfile, query: Message, response: Optional[Message]
) -> Optional[Message]:
    """Post-process a locally computed response per the profile: echo
    unknown EDNS options when the personality does, lowercase the echoed
    question when it canonicalises. Identity for the default profile."""
    if response is None:
        return None
    if profile.edns_unknown == "echo":
        edns = get_edns(query)
        if edns is not None:
            unknown = unknown_edns_options(query)
            if unknown:
                response = with_edns(
                    response, payload_size=edns.payload_size, options=unknown
                )
    if profile.case == "lower":
        response = lowercase_questions(response)
    return response


def ambiguity_forward_transform(
    profile: AmbiguityProfile, query: Message
) -> tuple[Message, Optional[Edns]]:
    """Rewrite a query a forwarder is about to relay upstream.

    Returns ``(query, edns_echo)``: the possibly rewritten query, plus
    the EDNS state to re-attach to the relayed *response* when the
    profile echoes unknown options. ``case="lower"`` lowercases the
    question before it goes upstream (so the upstream's verbatim echo is
    already canonical); ``edns_unknown`` ``"strip"``/``"echo"`` removes
    the OPT from the relayed query, which neutralises whatever opinion
    the upstream would have had about the unknown option.
    """
    edns_echo: Optional[Edns] = None
    if profile.case == "lower":
        query = lowercase_questions(query)
    if profile.edns_unknown in ("strip", "echo"):
        edns = get_edns(query)
        if edns is not None:
            from repro.dnswire import QType

            additionals = tuple(
                record
                for record in query.additionals
                if int(record.rdtype) != int(QType.OPT)
            )
            query = replace(query, additionals=additionals)
            if profile.edns_unknown == "echo":
                unknown = tuple(
                    option
                    for option in edns.options
                    if option.code not in KNOWN_OPTION_CODES
                )
                if unknown:
                    edns_echo = Edns(
                        payload_size=edns.payload_size, options=unknown
                    )
    return query, edns_echo
