"""Authoritative-only servers.

Most resolution in the reproduction is abstracted through the
:class:`~repro.resolvers.directory.NameDirectory`, but a packet-level
authoritative server is still needed in two places: tests that exercise
full client->server DNS exchanges, and topologies where the experimenter
wants to watch their *own* authoritative server (the Vallina-Rodriguez
style prevalence technique we compare against in the docs).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.dnswire import Message, QClass, RCode, Zone
from repro.net import Packet
from repro.net.addr import IPAddress

from .base import DnsServerNode
from .software import ServerSoftware, bind_vanilla


class AuthoritativeServerNode(DnsServerNode):
    """Serves one or more zones, authoritatively, with no recursion."""

    def __init__(
        self,
        name: str,
        addresses: "list[str | IPAddress]",
        zones: Iterable[Zone],
        software: Optional[ServerSoftware] = None,
        asn: Optional[int] = None,
    ) -> None:
        super().__init__(name, addresses, software=software or bind_vanilla(), asn=asn)
        self.zones = list(zones)

    def zone_for(self, qname) -> Optional[Zone]:
        best: Optional[Zone] = None
        for zone in self.zones:
            if zone.covers(qname):
                if best is None or len(zone.origin) > len(best.origin):
                    best = zone
        return best

    def respond_standard(self, query: Message, packet: Packet) -> Optional[Message]:
        question = query.question
        assert question is not None
        if int(question.qclass) != int(QClass.IN):
            return query.reply(rcode=RCode.NOTIMP)
        zone = self.zone_for(question.qname)
        if zone is None:
            return query.reply(rcode=RCode.REFUSED)
        result = zone.lookup(
            question.qname, question.qtype, question.qclass, source=str(packet.src)
        )
        return query.reply(
            rcode=result.rcode, answers=tuple(result.records), authoritative=True
        )
