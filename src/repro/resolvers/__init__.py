"""``repro.resolvers`` — the DNS server zoo.

Public anycast resolvers with location-query support, ISP recursive
resolvers, authoritative servers, and the software-personality catalog
whose ``version.bind`` strings drive the paper's Step-2 fingerprinting.
"""

from .base import ChaosOutcome, DnsServerNode, chaos_respond
from .directory import (
    AKAMAI_WHOAMI,
    CONTROL_DOMAIN,
    GOOGLE_MYADDR,
    OPENDNS_DEBUG,
    NameDirectory,
    build_akamai_zone,
    build_control_zone,
    build_default_directory,
    build_example_zone,
    build_google_zone,
    build_opendns_zone,
)
from .public import (
    ANYCAST_SITES,
    PROVIDER_SPECS,
    Provider,
    ProviderSpec,
    PublicResolverNode,
    default_catchment,
)
from .recursive import RecursiveResolverNode
from .authoritative import AuthoritativeServerNode
from .software import (
    ChaosAction,
    ChaosBehavior,
    QUIRKY_STRINGS,
    ServerSoftware,
    bind_debian,
    bind_redhat,
    bind_vanilla,
    dnsmasq,
    microsoft,
    mute,
    pi_hole,
    powerdns,
    quirky,
    silent_forwarder,
    unbound,
    windows_ns,
    xdns,
)

__all__ = [
    "ChaosOutcome",
    "DnsServerNode",
    "chaos_respond",
    "AKAMAI_WHOAMI",
    "CONTROL_DOMAIN",
    "GOOGLE_MYADDR",
    "OPENDNS_DEBUG",
    "NameDirectory",
    "build_akamai_zone",
    "build_control_zone",
    "build_default_directory",
    "build_example_zone",
    "build_google_zone",
    "build_opendns_zone",
    "ANYCAST_SITES",
    "PROVIDER_SPECS",
    "Provider",
    "ProviderSpec",
    "PublicResolverNode",
    "default_catchment",
    "RecursiveResolverNode",
    "AuthoritativeServerNode",
    "ChaosAction",
    "ChaosBehavior",
    "QUIRKY_STRINGS",
    "ServerSoftware",
    "bind_debian",
    "bind_redhat",
    "bind_vanilla",
    "dnsmasq",
    "microsoft",
    "mute",
    "pi_hole",
    "powerdns",
    "quirky",
    "silent_forwarder",
    "unbound",
    "windows_ns",
    "xdns",
]
