"""Recursive resolvers operated by ISPs.

When a residential query is hijacked — by the CPE's DNAT rule or by an
ISP middlebox — the *alternate resolver* that actually answers is almost
always the ISP's own recursive resolver. Its software personality is
what leaks through Step 2 (``version.bind``) and its egress address is
what the transparency check sees in the ``whoami.akamai.com`` answer.
"""

from __future__ import annotations

from typing import Optional

from repro.dnswire import Message, QClass, QType, RCode
from repro.net import Packet
from repro.net.addr import IPAddress, parse_ip

from .base import DnsServerNode
from .directory import NameDirectory
from .software import ServerSoftware, unbound


class RecursiveResolverNode(DnsServerNode):
    """An ISP recursive resolver resolving through the name directory.

    ``blocked_names`` supports filtering deployments (the malware
    filtering XDNS was built for): queries for those names return the
    configured ``block_rcode`` instead of an answer.
    """

    def __init__(
        self,
        name: str,
        addresses: "list[str | IPAddress]",
        directory: NameDirectory,
        software: Optional[ServerSoftware] = None,
        egress: "str | IPAddress | None" = None,
        asn: Optional[int] = None,
        blocked_names: Optional[set[str]] = None,
        block_rcode: int = RCode.REFUSED,
        tls_identity: Optional[str] = None,
        nxdomain_wildcard_to: "str | IPAddress | None" = None,
    ) -> None:
        super().__init__(
            name,
            addresses,
            software=software or unbound(),
            asn=asn,
            # ISP resolvers increasingly offer DoT; the identity is the
            # resolver's own name, never a public resolver's.
            tls_identity=tls_identity or f"dot.{name}.example.net",
        )
        self.directory = directory
        self._egress = parse_ip(egress) if egress else None
        self.blocked_names = {n.lower().rstrip(".") + "." for n in (blocked_names or set())}
        self.block_rcode = block_rcode
        #: NXDOMAIN wildcarding (Kreibich et al., Weaver et al.): rewrite
        #: name-error responses into an A record pointing at an ad/search
        #: server. This is DNS *redirection*, the related-but-different
        #: manipulation §2 distinguishes from interception — modelled so
        #: the boundary of the paper's technique can be tested.
        self.nxdomain_wildcard_to = (
            parse_ip(nxdomain_wildcard_to) if nxdomain_wildcard_to else None
        )

    def egress_address(self, family: int) -> IPAddress:
        if self._egress is not None and self._egress.version == family:
            return self._egress
        for address in sorted(self.addresses(), key=str):
            if address.version == family:
                return address
        raise RuntimeError(f"{self.name} has no IPv{family} address")

    def respond_standard(self, query: Message, packet: Packet) -> Optional[Message]:
        question = query.question
        assert question is not None
        if int(question.qclass) != int(QClass.IN):
            return query.reply(rcode=RCode.NOTIMP)
        qname_text = question.qname.to_text().lower()
        if qname_text in self.blocked_names:
            return query.reply(rcode=self.block_rcode)
        egress = self.egress_address(packet.src.version)
        result = self.directory.resolve(
            question.qname, question.qtype, question.qclass, str(egress)
        )
        if (
            result.rcode == RCode.NXDOMAIN
            and self.nxdomain_wildcard_to is not None
            and int(question.qtype) == int(QType.A)
            and self.nxdomain_wildcard_to.version == 4
        ):
            from repro.dnswire import a_record

            forged = a_record(question.qname, str(self.nxdomain_wildcard_to), ttl=60)
            return query.reply(rcode=RCode.NOERROR, answers=(forged,))
        return query.reply(rcode=result.rcode, answers=tuple(result.records))
