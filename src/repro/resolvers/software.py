"""DNS server software personalities.

A *personality* describes how a piece of resolver software answers the
CHAOS-class debugging queries — most importantly ``version.bind``, whose
answer string is the fingerprint the paper's Step 2 compares (and whose
observed values are catalogued in Table 5: dnsmasq variants dominate,
followed by pi-hole builds, unbound, BIND packages, and a long tail of
oddities like ``huuh?``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.dnswire import RCode

from .ambiguity import DEFAULT_AMBIGUITY, AmbiguityProfile


class ChaosAction(enum.Enum):
    """How a server reacts to a given CHAOS debugging query."""

    ANSWER = "answer"  # return a TXT string locally
    RCODE = "rcode"  # return an error status locally
    FORWARD = "forward"  # pass the query upstream (forwarders only)
    IGNORE = "ignore"  # drop silently (client sees a timeout)


@dataclass(frozen=True)
class ChaosBehavior:
    """Reaction to one CHAOS query name."""

    action: ChaosAction
    text: Optional[str] = None
    rcode: int = RCode.NOTIMP

    @classmethod
    def answer(cls, text: str) -> "ChaosBehavior":
        return cls(ChaosAction.ANSWER, text=text)

    @classmethod
    def refuse(cls, rcode: int = RCode.REFUSED) -> "ChaosBehavior":
        return cls(ChaosAction.RCODE, rcode=rcode)

    @classmethod
    def notimp(cls) -> "ChaosBehavior":
        return cls(ChaosAction.RCODE, rcode=RCode.NOTIMP)

    @classmethod
    def nxdomain(cls) -> "ChaosBehavior":
        return cls(ChaosAction.RCODE, rcode=RCode.NXDOMAIN)

    @classmethod
    def forward(cls) -> "ChaosBehavior":
        return cls(ChaosAction.FORWARD)

    @classmethod
    def ignore(cls) -> "ChaosBehavior":
        return cls(ChaosAction.IGNORE)


@dataclass(frozen=True)
class ServerSoftware:
    """A named software personality.

    ``label`` is what shows up in measurement reports; ``family`` groups
    versions for Table 5 aggregation (e.g. every ``dnsmasq-2.x`` build has
    family ``dnsmasq-*``).
    """

    label: str
    family: str
    version_bind: ChaosBehavior
    id_server: ChaosBehavior = field(default_factory=ChaosBehavior.notimp)
    hostname_bind: ChaosBehavior = field(default_factory=ChaosBehavior.notimp)
    #: How this code base reacts to ambiguous queries (the fingerprint
    #: surface). The shared default is behaviour-neutral; curated
    #: profiles below are pairwise distinct so the ambiguity-probe
    #: engine can name the software from its reaction vector alone.
    ambiguity: AmbiguityProfile = DEFAULT_AMBIGUITY

    def describe(self) -> str:
        return self.label


# -- curated ambiguity profiles -------------------------------------------
#
# One per code base (version differences included where the real
# projects changed behaviour between releases). Pairwise distinctness
# across every personality the population can deploy is enforced by the
# fingerprint signature database at build time
# (:func:`repro.fingerprint.signature.build_signature_database`).

_DNSMASQ_AMBIGUITY = {
    "2.78": AmbiguityProfile(
        tc_query="formerr", multi_question="formerr",
        edns_unknown="strip", odd_opcode="notimp",
    ),
    "2.80": AmbiguityProfile(
        tc_query="formerr", multi_question="formerr",
        edns_unknown="strip", odd_opcode="refused",
    ),
    "2.85": AmbiguityProfile(
        tc_query="formerr", multi_question="formerr",
        edns_unknown="echo", odd_opcode="refused", overlap="first",
    ),
}

_PI_HOLE_AMBIGUITY = {
    "2.81": AmbiguityProfile(
        case="lower", tc_query="refused", multi_question="formerr",
        edns_unknown="strip", odd_opcode="refused", overlap="first",
    ),
    "2.84": AmbiguityProfile(
        case="lower", tc_query="refused", multi_question="formerr",
        edns_unknown="echo", odd_opcode="refused", overlap="first",
    ),
}

_UNBOUND_AMBIGUITY = {
    "1.9.0": AmbiguityProfile(
        tc_query="formerr", multi_question="notimp",
        edns_unknown="formerr", odd_opcode="notimp",
    ),
    "1.13.1": AmbiguityProfile(
        tc_query="formerr", multi_question="notimp",
        edns_unknown="strip", odd_opcode="notimp",
    ),
}

_QUIRKY_AMBIGUITY = {
    "new": AmbiguityProfile(
        tc_query="refused", multi_question="refused",
        edns_unknown="strip", odd_opcode="refused",
    ),
    "unknown": AmbiguityProfile(
        tc_query="refused", multi_question="refused",
        edns_unknown="strip", odd_opcode="notimp",
    ),
    "none": AmbiguityProfile(
        tc_query="refused", multi_question="refused",
        edns_unknown="echo", odd_opcode="refused",
    ),
    "huuh?": AmbiguityProfile(
        case="lower", tc_query="drop", multi_question="drop",
        edns_unknown="drop", odd_opcode="drop", overlap="first",
    ),
}


def dnsmasq(version: str = "2.80") -> ServerSoftware:
    """Dnsmasq: the canonical CPE forwarder (thekelleys.org.uk).

    Dnsmasq answers ``version.bind`` locally with ``dnsmasq-<version>``
    and does not implement ``id.server``; unknown CHAOS queries are
    answered NXDOMAIN rather than forwarded.
    """
    return ServerSoftware(
        label=f"dnsmasq-{version}",
        family="dnsmasq-*",
        version_bind=ChaosBehavior.answer(f"dnsmasq-{version}"),
        id_server=ChaosBehavior.nxdomain(),
        hostname_bind=ChaosBehavior.nxdomain(),
        ambiguity=_DNSMASQ_AMBIGUITY.get(version, _DNSMASQ_AMBIGUITY["2.80"]),
    )


def pi_hole(version: str = "2.81") -> ServerSoftware:
    """Pi-hole's bundled dnsmasq fork (FTL), a deliberate home interceptor."""
    return ServerSoftware(
        label=f"dnsmasq-pi-hole-{version}",
        family="dnsmasq-pi-hole-*",
        version_bind=ChaosBehavior.answer(f"dnsmasq-pi-hole-{version}"),
        id_server=ChaosBehavior.nxdomain(),
        hostname_bind=ChaosBehavior.nxdomain(),
        ambiguity=_PI_HOLE_AMBIGUITY.get(version, _PI_HOLE_AMBIGUITY["2.81"]),
    )


def unbound(version: str = "1.9.0", identity: Optional[str] = None) -> ServerSoftware:
    """NLnet Labs Unbound.

    With ``identity`` set (unbound.conf's ``identity:`` option) the server
    answers ``id.server``/``hostname.bind`` with that string — the origin
    of Table 2's ``routing.v2.pw`` answer to a Cloudflare location query.
    """
    ident = (
        ChaosBehavior.answer(identity) if identity else ChaosBehavior.notimp()
    )
    return ServerSoftware(
        label=f"unbound {version}",
        family="unbound*",
        version_bind=ChaosBehavior.answer(f"unbound {version}"),
        id_server=ident,
        hostname_bind=ident,
        ambiguity=_UNBOUND_AMBIGUITY.get(version, _UNBOUND_AMBIGUITY["1.9.0"]),
    )


def unbound_hidden(version: str = "1.9.0") -> ServerSoftware:
    """Unbound with ``hide-version: yes`` / ``hide-identity: yes``.

    Such resolvers answer the debugging queries with an error status
    instead of a string — the source of Table 3's NOTIMP rows for probe
    11992.
    """
    return ServerSoftware(
        label=f"unbound {version} (hidden)",
        family="unbound*",
        version_bind=ChaosBehavior.notimp(),
        id_server=ChaosBehavior.notimp(),
        hostname_bind=ChaosBehavior.notimp(),
        # hide-version also silences the TC edge case in this build.
        ambiguity=AmbiguityProfile(
            tc_query="drop", multi_question="notimp",
            edns_unknown="strip", odd_opcode="notimp",
        ),
    )


def bind_redhat(version: str = "9.11.4-P2") -> ServerSoftware:
    return ServerSoftware(
        label=f"{version}-RedHat-{version}-26.P2.el7",
        family="*-RedHat",
        version_bind=ChaosBehavior.answer(f"{version}-RedHat-{version}-26.P2.el7"),
        id_server=ChaosBehavior.refuse(),
        hostname_bind=ChaosBehavior.refuse(),
        ambiguity=AmbiguityProfile(
            tc_query="formerr", multi_question="refused",
            edns_unknown="echo", odd_opcode="notimp",
        ),
    )


def bind_debian(version: str = "9.11.5-P4") -> ServerSoftware:
    return ServerSoftware(
        label=f"{version}-5.1+deb10u5-Debian",
        family="*-Debian",
        version_bind=ChaosBehavior.answer(f"{version}-5.1+deb10u5-Debian"),
        id_server=ChaosBehavior.refuse(),
        hostname_bind=ChaosBehavior.refuse(),
        ambiguity=AmbiguityProfile(
            tc_query="formerr", multi_question="refused",
            edns_unknown="echo", odd_opcode="refused",
        ),
    )


def bind_vanilla(version: str = "9.16.15") -> ServerSoftware:
    return ServerSoftware(
        label=version,
        family=version,
        version_bind=ChaosBehavior.answer(version),
        id_server=ChaosBehavior.refuse(),
        hostname_bind=ChaosBehavior.refuse(),
        ambiguity=AmbiguityProfile(
            tc_query="formerr", multi_question="refused",
            edns_unknown="echo", odd_opcode="formerr",
        ),
    )


def powerdns(version: str = "4.1.11") -> ServerSoftware:
    return ServerSoftware(
        label=f"PowerDNS Recursor {version}",
        family="PowerDNS Recursor*",
        version_bind=ChaosBehavior.answer(f"PowerDNS Recursor {version}"),
        id_server=ChaosBehavior.refuse(),
        hostname_bind=ChaosBehavior.refuse(),
        ambiguity=AmbiguityProfile(
            tc_query="notimp", multi_question="formerr",
            edns_unknown="strip", odd_opcode="notimp",
        ),
    )


def windows_ns() -> ServerSoftware:
    return ServerSoftware(
        label="Windows NS",
        family="Windows NS",
        version_bind=ChaosBehavior.answer("Windows NS"),
        id_server=ChaosBehavior.notimp(),
        hostname_bind=ChaosBehavior.notimp(),
        ambiguity=AmbiguityProfile(
            case="lower", tc_query="formerr", multi_question="refused",
            edns_unknown="strip", odd_opcode="notimp",
        ),
    )


def microsoft() -> ServerSoftware:
    return ServerSoftware(
        label="Microsoft",
        family="Microsoft",
        version_bind=ChaosBehavior.answer("Microsoft"),
        id_server=ChaosBehavior.notimp(),
        hostname_bind=ChaosBehavior.notimp(),
        ambiguity=AmbiguityProfile(
            case="lower", tc_query="formerr", multi_question="refused",
            edns_unknown="strip", odd_opcode="refused",
        ),
    )


def q9() -> ServerSoftware:
    """The ``Q9-U-6.6`` oddity from Table 5 (an embedded vendor build)."""
    return ServerSoftware(
        label="Q9-U-6.6",
        family="Q9-*",
        version_bind=ChaosBehavior.answer("Q9-U-6.6"),
        ambiguity=AmbiguityProfile(
            case="lower", tc_query="notimp", multi_question="notimp",
            edns_unknown="strip", odd_opcode="notimp", overlap="first",
        ),
    )


def quirky(text: str) -> ServerSoftware:
    """Operator-configured oddball version strings ('new', 'huuh?', ...)."""
    return ServerSoftware(
        label=text,
        family=text,
        version_bind=ChaosBehavior.answer(text),
        id_server=ChaosBehavior.notimp(),
        hostname_bind=ChaosBehavior.notimp(),
        ambiguity=_QUIRKY_AMBIGUITY.get(
            text,
            AmbiguityProfile(
                tc_query="servfail", multi_question="servfail",
                edns_unknown="strip", odd_opcode="servfail",
            ),
        ),
    )


def xdns(dnsmasq_version: str = "2.85") -> ServerSoftware:
    """XDNS, the RDK-B (XB6/XB7) gateway DNS component (CcspXDNS).

    XDNS is the management-plane component that installs the DNAT
    redirection; the data plane it steers is RDK-B's bundled dnsmasq, so
    the ``version.bind`` answer the client sees is a dnsmasq string —
    which is why XB6 interceptions land in Table 5's ``dnsmasq-*`` row.
    """
    # Same profile as plain dnsmasq of the same version: the data plane
    # *is* dnsmasq, so the ambiguity fingerprint (correctly) names it.
    return ServerSoftware(
        label=f"dnsmasq-{dnsmasq_version}",
        family="dnsmasq-*",
        version_bind=ChaosBehavior.answer(f"dnsmasq-{dnsmasq_version}"),
        id_server=ChaosBehavior.nxdomain(),
        hostname_bind=ChaosBehavior.nxdomain(),
        ambiguity=_DNSMASQ_AMBIGUITY.get(
            dnsmasq_version, _DNSMASQ_AMBIGUITY["2.80"]
        ),
    )


def silent_forwarder() -> ServerSoftware:
    """A forwarder that answers no CHAOS query itself and relays them all.

    This is the §6 limitation case: a non-intercepting, open-port-53 CPE
    running such software *forwards* ``version.bind`` to its resolver,
    which can make Step 2 misclassify it as an interceptor.
    """
    return ServerSoftware(
        label="(no version.bind)",
        family="(forwards)",
        version_bind=ChaosBehavior.forward(),
        id_server=ChaosBehavior.forward(),
        hostname_bind=ChaosBehavior.forward(),
        ambiguity=AmbiguityProfile(
            tc_query="drop", multi_question="drop",
            edns_unknown="strip", odd_opcode="drop",
        ),
    )


def mute() -> ServerSoftware:
    """Software that drops CHAOS debugging queries entirely."""
    return ServerSoftware(
        label="(mute)",
        family="(mute)",
        version_bind=ChaosBehavior.ignore(),
        id_server=ChaosBehavior.ignore(),
        hostname_bind=ChaosBehavior.ignore(),
    )


#: The Table 5 long tail, ready for the population generator.
QUIRKY_STRINGS = ("new", "unknown", "none", "huuh?")
