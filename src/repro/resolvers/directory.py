"""The global name directory: authoritative data for the simulated Internet.

Recursive resolution (resolver -> root -> TLD -> authoritative) is not
what the paper measures, so the reproduction abstracts it: every
recursive resolver resolves through a shared :class:`NameDirectory` of
authoritative zones. The *client-to-resolver* path — where interception
happens — stays fully packet-level.

The directory supports dynamic zones, which is how the two oracles work:

- ``o-o.myaddr.l.google.com``  TXT -> the egress address of the resolver
  that asked (Google's location query, Table 1);
- ``whoami.akamai.com``  A/AAAA -> same, as an address record (the
  transparency check of §4.1.2).
"""

from __future__ import annotations

import ipaddress
from typing import Optional

from repro.dnswire import (
    DnsName,
    QClass,
    QType,
    RCode,
    ResourceRecord,
    Zone,
    a_record,
    aaaa_record,
    name,
    txt_record,
)
from repro.dnswire.rr import AAAAData, AData
from repro.dnswire.zone import LookupResult

#: Domain names used throughout the reproduction.
GOOGLE_MYADDR = name("o-o.myaddr.l.google.com.")
AKAMAI_WHOAMI = name("whoami.akamai.com.")
OPENDNS_DEBUG = name("debug.opendns.com.")
#: "a generic domain we control" (§3.3) — the bogon-query probe name.
CONTROL_DOMAIN = name("probe.dns-interception-study.example.")


class NameDirectory:
    """Registry of authoritative zones with longest-suffix dispatch."""

    def __init__(self) -> None:
        self._zones: dict[DnsName, Zone] = {}

    def add_zone(self, zone: Zone) -> Zone:
        self._zones[zone.origin] = zone
        return zone

    def zone_for(self, qname: "str | DnsName") -> Optional[Zone]:
        """The most specific zone containing ``qname``."""
        qname = name(qname)
        best: Optional[Zone] = None
        for origin, zone in self._zones.items():
            if qname.is_subdomain_of(origin):
                if best is None or len(origin) > len(best.origin):
                    best = zone
        return best

    def resolve(
        self,
        qname: "str | DnsName",
        qtype: int,
        qclass: int = QClass.IN,
        resolver_egress: str = "",
    ) -> LookupResult:
        """Resolve as a recursive resolver with egress ``resolver_egress`` would.

        Names under no registered zone resolve to NXDOMAIN (there is no
        fallback to the real Internet).
        """
        zone = self.zone_for(qname)
        if zone is None:
            return LookupResult(rcode=RCode.NXDOMAIN)
        return zone.lookup(qname, qtype, qclass, source=resolver_egress)


def build_google_zone() -> Zone:
    """google.com with the dynamic ``o-o.myaddr`` TXT responder."""
    zone = Zone("google.com.")

    def myaddr(_qname: DnsName, source: str) -> list[ResourceRecord]:
        return [txt_record(GOOGLE_MYADDR, source or "0.0.0.0", ttl=60)]

    zone.add_dynamic(GOOGLE_MYADDR, QType.TXT, myaddr)
    zone.add(a_record("www.google.com.", "142.250.72.196"))
    return zone


def build_akamai_zone() -> Zone:
    """akamai.com with the dynamic whoami responder (Korf & Strom, 2018)."""
    zone = Zone("akamai.com.")

    def whoami_a(_qname: DnsName, source: str) -> list[ResourceRecord]:
        try:
            address = ipaddress.ip_address(source)
        except ValueError:
            return []
        if address.version != 4:
            return []
        return [a_record(AKAMAI_WHOAMI, str(address), ttl=60)]

    def whoami_aaaa(_qname: DnsName, source: str) -> list[ResourceRecord]:
        try:
            address = ipaddress.ip_address(source)
        except ValueError:
            return []
        if address.version != 6:
            return []
        return [aaaa_record(AKAMAI_WHOAMI, str(address), ttl=60)]

    zone.add_dynamic(AKAMAI_WHOAMI, QType.A, whoami_a)
    zone.add_dynamic(AKAMAI_WHOAMI, QType.AAAA, whoami_aaaa)
    zone.add(a_record("www.akamai.com.", "104.103.99.18"))
    return zone


def build_opendns_zone() -> Zone:
    """opendns.com as the *rest of the world* sees it.

    ``debug.opendns.com`` only yields diagnostic TXT records when asked
    through OpenDNS's own resolvers (which special-case it); resolved
    anywhere else it is an empty NODATA answer. Registering the bare name
    with no TXT records produces exactly that.
    """
    zone = Zone("opendns.com.")
    zone.add(a_record("www.opendns.com.", "146.112.62.105"))
    # debug.opendns.com exists (so: NODATA, not NXDOMAIN) but has no TXT.
    zone.add(a_record(OPENDNS_DEBUG, "146.112.62.106"))
    return zone


def build_control_zone() -> Zone:
    """The experimenter-controlled domain used for bogon queries (§3.3)."""
    zone = Zone("dns-interception-study.example.")
    zone.add(a_record(CONTROL_DOMAIN, "198.51.100.200"))
    zone.add(aaaa_record(CONTROL_DOMAIN, "2001:db8:ffff::200"))
    zone.add(txt_record(CONTROL_DOMAIN, "bogon-probe", ttl=60))
    return zone


def build_example_zone() -> Zone:
    """example.com, the generic resolvable workload domain."""
    zone = Zone("example.com.")
    zone.add(a_record("example.com.", "93.184.216.34"))
    zone.add(a_record("www.example.com.", "93.184.216.34"))
    zone.add(aaaa_record("www.example.com.", "2606:2800:220:1:248:1893:25c8:1946"))
    zone.add(txt_record("example.com.", "v=spf1 -all"))
    return zone


def build_provider_name_zones() -> list[Zone]:
    """One zone per public-resolver TLS name (``dns.google.`` ...).

    The certificate cross-validation detector resolves each provider's
    own name as its canary and then "connects" to the answers; these
    zones make the canaries resolvable, answering with the provider's
    published service addresses. Longest-suffix dispatch keeps
    ``dns.opendns.com.`` ahead of the broader ``opendns.com.`` zone.
    """
    # Late import: resolvers.public imports this module at load time.
    from repro.resolvers.public import PROVIDER_SPECS, PROVIDER_TLS_IDENTITIES

    zones = []
    for provider, spec in PROVIDER_SPECS.items():
        origin = PROVIDER_TLS_IDENTITIES[provider] + "."
        zone = Zone(origin)
        for address in spec.v4_addresses:
            zone.add(a_record(origin, address))
        for address in spec.v6_addresses:
            zone.add(aaaa_record(origin, address))
        zones.append(zone)
    return zones


def build_default_directory() -> NameDirectory:
    """A directory with every zone the methodology needs."""
    directory = NameDirectory()
    directory.add_zone(build_google_zone())
    directory.add_zone(build_akamai_zone())
    directory.add_zone(build_opendns_zone())
    directory.add_zone(build_control_zone())
    directory.add_zone(build_example_zone())
    for zone in build_provider_name_zones():
        directory.add_zone(zone)
    return directory
